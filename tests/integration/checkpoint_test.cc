/**
 * @file
 * Trusted-state snapshot robustness: a checkpoint taken over a
 * persistent mmap tree restores into a bit-identical engine (plain
 * and encrypted), while every damaged or mismatched snapshot —
 * flipped bits, truncated files, wrong geometry, wrong seed, wrong
 * superblock size, wrong section kind — is rejected loudly with a
 * SnapshotError instead of deserializing garbage into the position
 * map. The restore-or-fresh construction decision (a reopened tree
 * without --restore, a fresh tree with it, a missing sidecar) is
 * fatal by design and death-tested against its CLI guidance.
 *
 * Seeded via LAORAM_DIFF_SEED like the differential suite.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/laoram_client.hh"
#include "engine_snapshot.hh"
#include "util/rng.hh"
#include "util/serde.hh"

namespace laoram::core {
namespace {

std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "laoram_checkpoint_" + tag;
}

LaoramConfig
mmapConfig(const std::string &treePath, bool encrypt,
           std::uint64_t seed)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 96;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 32;
    cfg.base.encrypt = encrypt;
    cfg.base.seed = seed;
    cfg.base.storage.kind = storage::BackendKind::MmapFile;
    cfg.base.storage.path = treePath;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = 32;
    return cfg;
}

/** Random trace over the engine's block space. */
std::vector<oram::BlockId>
randomTrace(std::uint64_t accesses, std::uint64_t numBlocks,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> trace;
    trace.reserve(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        trace.push_back(rng.nextBounded(numBlocks));
    return trace;
}

/** Write a distinct payload into every block. */
void
fillPayloads(Laoram &engine, const LaoramConfig &cfg)
{
    std::vector<std::uint8_t> buf(cfg.base.payloadBytes);
    for (oram::BlockId id = 0; id < cfg.base.numBlocks; ++id) {
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(id * 31 + i);
        engine.writeBlock(id, buf);
    }
}

class CheckpointRoundTrip : public ::testing::TestWithParam<bool>
{
  protected:
    void
    SetUp() override
    {
        const char *leg = GetParam() ? "enc" : "plain";
        tree = tempPath(std::string("roundtrip_") + leg + ".tree");
        sidecar = tempPath(std::string("roundtrip_") + leg + ".ckpt");
        std::remove(tree.c_str());
        std::remove(sidecar.c_str());
    }

    void
    TearDown() override
    {
        std::remove(tree.c_str());
        std::remove(sidecar.c_str());
    }

    std::string tree;
    std::string sidecar;
};

TEST_P(CheckpointRoundTrip, RestoredEngineIsByteIdentical)
{
    const bool encrypt = GetParam();
    const std::uint64_t seed = diffSeed();
    LaoramConfig cfg = mmapConfig(tree, encrypt, seed);
    const auto trace =
        randomTrace(160, cfg.base.numBlocks, seed + 17);

    // Uninterrupted reference over DRAM: the determinism contract
    // makes it byte-identical to the mmap run, and snapshotOf's
    // payload readback may freely mutate it — the checkpointed tree
    // file below stays untouched past its sidecar.
    LaoramConfig refCfg = cfg;
    refCfg.base.storage = {};
    Laoram reference(refCfg);
    fillPayloads(reference, refCfg);
    reference.runTrace(trace);
    const EngineSnapshot snap = snapshotOf(reference);

    {
        Laoram original(cfg);
        fillPayloads(original, cfg);
        original.runTrace(trace);
        original.checkpointToFile(sidecar);
    } // flushes + unmaps the tree file at exactly checkpoint state

    LaoramConfig rcfg = cfg;
    rcfg.base.storage.keepExisting = true;
    rcfg.base.checkpoint.path = sidecar;
    rcfg.base.checkpoint.restore = true;
    Laoram restored(rcfg);
    expectMatchesSnapshot(snap, restored, "restored engine");
}

TEST_P(CheckpointRoundTrip, CheckpointIsDeterministic)
{
    // Two checkpoints of the same quiesced engine must be
    // byte-identical (the stash is serialized in sorted order), so
    // snapshots can be compared/deduplicated by hash.
    const bool encrypt = GetParam();
    LaoramConfig cfg = mmapConfig(tree, encrypt, diffSeed());
    Laoram engine(cfg);
    fillPayloads(engine, cfg);
    engine.runTrace(
        randomTrace(96, cfg.base.numBlocks, diffSeed() + 3));
    EXPECT_EQ(engine.checkpoint(), engine.checkpoint());
}

INSTANTIATE_TEST_SUITE_P(PlainAndEncrypted, CheckpointRoundTrip,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "Encrypted" : "Plain";
                         });

class CheckpointRejection : public ::testing::Test
{
  protected:
    /** A DRAM engine with some state plus its checkpoint blob. */
    std::vector<std::uint8_t>
    blobOf(const LaoramConfig &cfg)
    {
        Laoram engine(cfg);
        engine.runTrace(
            randomTrace(64, cfg.base.numBlocks, diffSeed() + 5));
        return engine.checkpoint();
    }

    LaoramConfig
    dramConfig(std::uint64_t seed = 11)
    {
        LaoramConfig cfg;
        cfg.base.numBlocks = 64;
        cfg.base.blockBytes = 64;
        cfg.base.seed = seed;
        cfg.superblockSize = 4;
        cfg.lookaheadWindow = 16;
        return cfg;
    }
};

TEST_F(CheckpointRejection, SampledBitFlipsAreRejected)
{
    const LaoramConfig cfg = dramConfig();
    const std::vector<std::uint8_t> blob = blobOf(cfg);
    Laoram victim(cfg);

    // The frame-level test in serde_test is exhaustive on a small
    // frame; over a real multi-KB engine snapshot we sample bit
    // positions (seeded) and every mutant must throw before any
    // client state is touched.
    Rng rng(diffSeed() + 99);
    for (int i = 0; i < 64; ++i) {
        auto mutant = blob;
        const std::uint64_t bit =
            rng.nextBounded(mutant.size() * 8);
        mutant[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_THROW(victim.restoreFrom(mutant),
                     serde::SnapshotError)
            << "bit " << bit << " flip was accepted";
    }
    // The victim still serves: every rejection happened at checksum
    // time, before any state was overwritten.
    victim.runTrace(randomTrace(16, cfg.base.numBlocks, 1));
}

TEST_F(CheckpointRejection, TruncationsAreRejected)
{
    const LaoramConfig cfg = dramConfig();
    const std::vector<std::uint8_t> blob = blobOf(cfg);
    Laoram victim(cfg);
    for (std::size_t keep = 0; keep < blob.size();
         keep += 41) { // stride keeps the sweep fast but dense
        const std::vector<std::uint8_t> cut(blob.begin(),
                                            blob.begin() + keep);
        EXPECT_THROW(victim.restoreFrom(cut), serde::SnapshotError)
            << "truncation to " << keep << " bytes was accepted";
    }
}

TEST_F(CheckpointRejection, MismatchedEnginesAreRefused)
{
    const std::vector<std::uint8_t> blob = blobOf(dramConfig());

    {
        LaoramConfig other = dramConfig();
        other.base.numBlocks = 128; // wrong geometry
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = dramConfig();
        other.base.blockBytes = 128; // wrong block size
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = dramConfig(12); // wrong RNG lineage
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = dramConfig();
        other.base.encrypt = true; // wrong at-rest encryption
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = dramConfig();
        other.superblockSize = 8; // wrong look-ahead shape
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
}

TEST_F(CheckpointRejection, WrongSectionKindIsRefused)
{
    // A sharded manifest is not an engine snapshot, even with a valid
    // checksum.
    serde::Serializer s;
    s.u32(1);
    s.u64(64);
    for (int i = 0; i < 64; ++i)
        s.u32(0);
    const auto manifest =
        serde::seal(serde::SnapshotKind::ShardedManifest, s.data());
    Laoram victim(dramConfig());
    EXPECT_THROW(victim.restoreFrom(manifest), serde::SnapshotError);
}

class CheckpointHotCache : public ::testing::Test
{
  protected:
    LaoramConfig
    cachedConfig(std::uint64_t cacheRows = 16)
    {
        LaoramConfig cfg;
        cfg.base.numBlocks = 64;
        cfg.base.blockBytes = 64;
        cfg.base.payloadBytes = 16;
        cfg.base.seed = 21;
        cfg.superblockSize = 4;
        cfg.lookaheadWindow = 16;
        cfg.cache.capacityBytes = cacheRows * cfg.base.payloadBytes;
        return cfg;
    }

    /** Hot-set trace so the cache holds rows and has hit. */
    std::vector<oram::BlockId>
    hotTrace(std::uint64_t accesses, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<oram::BlockId> trace;
        trace.reserve(accesses);
        for (std::uint64_t i = 0; i < accesses; ++i)
            trace.push_back(rng.nextBounded(8));
        return trace;
    }
};

TEST_F(CheckpointHotCache, WarmCacheSurvivesCheckpointRestore)
{
    const LaoramConfig cfg = cachedConfig();
    Laoram original(cfg);
    original.setTouchCallback(
        [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            payload[0] = static_cast<std::uint8_t>(payload[0] + id + 1);
        });
    original.runTrace(hotTrace(120, diffSeed() + 7));
    original.setTouchCallback(nullptr);
    const cache::CacheStats before = original.hotCache()->stats();
    ASSERT_GT(before.hits, 0u);
    ASSERT_GT(before.residentRows, 0u);

    Laoram restored(cfg);
    restored.restoreFrom(original.checkpoint());

    // Counters and residency came back wholesale...
    const cache::CacheStats after = restored.hotCache()->stats();
    EXPECT_EQ(before.hits, after.hits);
    EXPECT_EQ(before.misses, after.misses);
    EXPECT_EQ(before.evictions, after.evictions);
    EXPECT_EQ(before.residentRows, after.residentRows);
    EXPECT_EQ(before.residentBytes, after.residentBytes);

    // ...and the restored cache is *warm*: continuing both engines
    // over the same stream keeps them byte-identical, including the
    // hit counters (restored rows serve hits, not misses).
    const auto more = hotTrace(60, diffSeed() + 8);
    original.runTrace(more);
    restored.runTrace(more);
    expectMatchesSnapshot(snapshotOf(original), restored,
                          "continued after restore");
    EXPECT_EQ(original.hotCache()->stats().hits,
              restored.hotCache()->stats().hits);
}

TEST_F(CheckpointHotCache, CacheConfigMismatchOnRestoreIsRefused)
{
    const LaoramConfig cfg = cachedConfig();
    Laoram engine(cfg);
    engine.runTrace(hotTrace(60, diffSeed() + 9));
    const std::vector<std::uint8_t> blob = engine.checkpoint();

    {
        // Snapshot carries a cache section; an engine without a cache
        // cannot silently drop the warm rows it promises.
        LaoramConfig other = cfg;
        other.cache = {};
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = cfg;
        other.cache.capacityBytes *= 2; // wrong capacity
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
    {
        LaoramConfig other = cfg;
        other.cache.policy = cache::CachePolicy::Lfu; // wrong policy
        Laoram victim(other);
        EXPECT_THROW(victim.restoreFrom(blob), serde::SnapshotError);
    }
}

TEST_F(CheckpointHotCache, CachelessSnapshotRestoresColdIntoCachedEngine)
{
    // Enabling the cache on an engine restored from a pre-cache
    // snapshot is legal (an upgrade, not a mismatch): it simply
    // starts cold.
    LaoramConfig plain = cachedConfig();
    plain.cache = {};
    Laoram old(plain);
    old.runTrace(hotTrace(60, diffSeed() + 10));
    const std::vector<std::uint8_t> blob = old.checkpoint();

    Laoram upgraded(cachedConfig());
    // Pre-warm the cache directly (running a trace would advance the
    // engine past the snapshot): restore must still drop these rows.
    upgraded.hotCache()->fill(3, std::vector<std::uint8_t>(16, 0xEE));
    ASSERT_GT(upgraded.hotCache()->stats().residentRows, 0u);
    upgraded.restoreFrom(blob);
    EXPECT_EQ(upgraded.hotCache()->stats().residentRows, 0u)
        << "stale pre-restore rows must not survive the restore";

    // And it serves correctly from cold.
    upgraded.runTrace(hotTrace(30, diffSeed() + 12));
}

TEST(CheckpointFreshness, ReopenedTreeWithoutRestoreIsFatal)
{
    const std::string tree = tempPath("freshness.tree");
    std::remove(tree.c_str());
    LaoramConfig cfg = mmapConfig(tree, false, 3);
    { Laoram first(cfg); } // creates + persists the tree

    LaoramConfig again = cfg;
    again.base.storage.keepExisting = true;
    // The message must point the operator at the actual recovery
    // flow: --restore --checkpoint-path.
    EXPECT_DEATH({ Laoram dead(again); (void)dead; },
                 "--restore --checkpoint-path");
    std::remove(tree.c_str());
}

TEST(CheckpointFreshness, RestoreAgainstFreshTreeIsFatal)
{
    const std::string tree = tempPath("fresh_restore.tree");
    const std::string sidecar = tempPath("fresh_restore.ckpt");
    std::remove(tree.c_str());
    serde::writeFileAtomic(sidecar,
                           serde::seal(serde::SnapshotKind::Engine,
                                       {}));
    LaoramConfig cfg = mmapConfig(tree, false, 3);
    cfg.base.checkpoint.path = sidecar;
    cfg.base.checkpoint.restore = true;
    EXPECT_DEATH({ Laoram dead(cfg); (void)dead; },
                 "initialised fresh");
    std::remove(tree.c_str());
    std::remove(sidecar.c_str());
}

TEST(CheckpointFreshness, MissingSidecarIsFatal)
{
    const std::string tree = tempPath("missing_sidecar.tree");
    const std::string sidecar = tempPath("missing_sidecar.ckpt");
    std::remove(tree.c_str());
    std::remove(sidecar.c_str());
    LaoramConfig cfg = mmapConfig(tree, false, 3);
    { Laoram first(cfg); }

    LaoramConfig again = cfg;
    again.base.storage.keepExisting = true;
    again.base.checkpoint.path = sidecar;
    again.base.checkpoint.restore = true;
    EXPECT_DEATH({ Laoram dead(again); (void)dead; },
                 "genuinely unrestorable");
    std::remove(tree.c_str());
}

} // namespace
} // namespace laoram::core
