/**
 * @file
 * Randomized differential determinism suite.
 *
 * Each iteration draws a random LAORAM configuration (geometry,
 * superblock size, look-ahead window, payload size, encryption,
 * batching, queue depth) and a random workload, then runs it through
 * every serving path the library offers:
 *
 *   - serial Laoram::runTrace (the reference),
 *   - the concurrent pipeline with P = 1, 2 and 4 preprocessor
 *     threads,
 *   - the simulated pipeline,
 *   - a remote-KV-backed engine (the whole tree behind the batched/
 *     async RPC backend, occasionally with a shaped link), pipelined,
 *   - a sharded run checked shard-by-shard against standalone
 *     reference engines built from shardEngineConfigFor.
 *
 * All paths must agree byte for byte: payloads, position map, stash,
 * traffic counters, simulated clock. This is the suite that locks in
 * the multi-preprocessor determinism contract under racy scheduling —
 * any ordering bug in the reorder stage or any call-order dependence
 * in the preprocessor shows up as a divergence with a reproducible
 * seed.
 *
 * Seed control (for CI):
 *   LAORAM_DIFF_SEED   base seed (default 1; ASan job pins it, the
 *                      non-gating rotating job derives one from the
 *                      run id). Always logged so a failure reproduces.
 *   LAORAM_DIFF_ITERS  iterations (default 6).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "core/sharded_laoram.hh"
#include "mem/traffic_meter.hh"
#include "util/rng.hh"

#include "engine_snapshot.hh"

namespace laoram::core {
namespace {

/** One drawn configuration + workload. */
struct Scenario
{
    LaoramConfig cfg;
    std::uint64_t window = 0; ///< == cfg.lookaheadWindow
    std::size_t queueDepth = 1;
    std::vector<oram::BlockId> trace;

    std::string
    describe() const
    {
        return "blocks=" + std::to_string(cfg.base.numBlocks)
               + " payload=" + std::to_string(cfg.base.payloadBytes)
               + " encrypt=" + (cfg.base.encrypt ? "1" : "0")
               + " S=" + std::to_string(cfg.superblockSize)
               + " window=" + std::to_string(window)
               + " batch=" + std::to_string(cfg.batchAccesses)
               + " depth=" + std::to_string(queueDepth)
               + " trace=" + std::to_string(trace.size())
               + " seed=" + std::to_string(cfg.base.seed);
    }
};

Scenario
drawScenario(Rng &rng)
{
    Scenario sc;
    sc.cfg.base.numBlocks = 64 + rng.nextBounded(448);       // 64..511
    sc.cfg.base.blockBytes = 64;
    sc.cfg.base.payloadBytes = 16 * rng.nextBounded(3);      // 0/16/32
    sc.cfg.base.encrypt = rng.nextBool(0.5);
    sc.cfg.base.seed = rng.next();
    sc.cfg.superblockSize = std::uint64_t{1}
                            << rng.nextBounded(4);           // 1..8
    sc.window = 32 + rng.nextBounded(225);                   // 32..256
    sc.cfg.lookaheadWindow = sc.window;
    // Half the time serve per bin, half in training batches.
    sc.cfg.batchAccesses =
        rng.nextBool(0.5) ? 0
                          : sc.cfg.superblockSize
                                * (2 + rng.nextBounded(7));
    sc.queueDepth = 1 + rng.nextBounded(4);

    const std::uint64_t length = 400 + rng.nextBounded(1601);
    sc.trace.reserve(length);
    // Mix a hot set into the uniform stream so bins actually link
    // forward (future-path metadata gets exercised, not just the
    // random-fallback path).
    const std::uint64_t hot =
        1 + sc.cfg.base.numBlocks / (2 + rng.nextBounded(7));
    for (std::uint64_t i = 0; i < length; ++i) {
        sc.trace.push_back(rng.nextBool(0.5)
                               ? rng.nextBounded(hot)
                               : rng.nextBounded(sc.cfg.base.numBlocks));
    }
    return sc;
}

Laoram::TouchFn
touchFor(const Scenario &sc)
{
    if (sc.cfg.base.payloadBytes == 0)
        return nullptr;
    return [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
        // Accumulating (not idempotent) so serving a window twice or
        // out of order cannot cancel out.
        payload[0] = static_cast<std::uint8_t>(payload[0] + id + 1);
    };
}

class DifferentialDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Always print the effective seed so any failure — fixed or
        // rotating — is reproducible from the log alone.
        std::printf("[ LAORAM   ] differential seed=%llu iters=%llu\n",
                    static_cast<unsigned long long>(diffSeed()),
                    static_cast<unsigned long long>(diffIters()));
    }
};

TEST_F(DifferentialDeterminism, PipelinedMatchesSerialForAnyPoolSize)
{
    Rng rng(diffSeed());
    const std::uint64_t iters = diffIters();
    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        const Scenario sc = drawScenario(rng);
        SCOPED_TRACE("iter " + std::to_string(iter) + ": "
                     + sc.describe());

        // One serial reference run, snapshotted: every leg below is
        // compared against the captured state, so the reference is
        // never re-run or mutated between legs.
        const EngineSnapshot serial = [&sc] {
            Laoram engine(sc.cfg);
            engine.setTouchCallback(touchFor(sc));
            engine.runTrace(sc.trace);
            engine.setTouchCallback(nullptr);
            return snapshotOf(engine);
        }();

        PipelineConfig pc;
        pc.windowAccesses = sc.window;
        pc.queueDepth = sc.queueDepth;

        for (const std::size_t preps :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            pc.mode = PipelineMode::Concurrent;
            pc.prepThreads = preps;
            Laoram piped(sc.cfg);
            piped.setTouchCallback(touchFor(sc));
            BatchPipeline pipe(piped, pc);
            pipe.run(sc.trace);
            piped.setTouchCallback(nullptr);

            expectMatchesSnapshot(serial, piped,
                                  "pipelined P="
                                      + std::to_string(preps));
        }

        // The simulated pipeline shares the window scheme and must
        // land on the same client state too.
        pc.mode = PipelineMode::Simulated;
        pc.prepThreads = 1;
        Laoram simulated(sc.cfg);
        simulated.setTouchCallback(touchFor(sc));
        BatchPipeline simPipe(simulated, pc);
        simPipe.run(sc.trace);
        simulated.setTouchCallback(nullptr);
        expectMatchesSnapshot(serial, simulated, "simulated");

        // Remote-KV leg: the identical engine with its tree behind
        // the batched/async RPC backend (in-process node over DRAM),
        // served through the concurrent pipeline. Payloads, position
        // map, stash and meters must stay byte-identical to the DRAM
        // serial reference; half the iterations shape the link so the
        // async write window genuinely pipelines.
        LaoramConfig rcfg = sc.cfg;
        rcfg.base.storage.kind = storage::BackendKind::Remote;
        if (rng.nextBool(0.5)) {
            rcfg.base.storage.remote.latencyNs = 5'000;
            rcfg.base.storage.remote.windowDepth =
                1 + rng.nextBounded(4);
        }
        pc.mode = PipelineMode::Concurrent;
        pc.prepThreads = 2;
        Laoram remote(rcfg);
        remote.setTouchCallback(touchFor(sc));
        BatchPipeline remotePipe(remote, pc);
        remotePipe.run(sc.trace);
        remote.setTouchCallback(nullptr);
        expectMatchesSnapshot(serial, remote, "remote-kv");
    }
}

TEST_F(DifferentialDeterminism, ShardedMatchesStandaloneReferences)
{
    Rng rng(diffSeed() ^ 0x5D1FFULL);
    const std::uint64_t iters = diffIters();
    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        const Scenario sc = drawScenario(rng);
        SCOPED_TRACE("iter " + std::to_string(iter) + ": "
                     + sc.describe());

        ShardedLaoramConfig scfg;
        scfg.engine = sc.cfg;
        scfg.numShards =
            2 + static_cast<std::uint32_t>(rng.nextBounded(2));
        scfg.pipeline.windowAccesses = sc.window;
        scfg.pipeline.queueDepth = sc.queueDepth;
        scfg.pipeline.prepThreads = 1 + rng.nextBounded(3);
        scfg.prepThreadBudget =
            static_cast<std::uint32_t>(rng.nextBounded(7)); // 0..6

        ShardedLaoram sharded(scfg);
        if (sc.cfg.base.payloadBytes > 0) {
            sharded.setTouchCallback(
                [](oram::BlockId global,
                   std::vector<std::uint8_t> &payload) {
                    payload[0] = static_cast<std::uint8_t>(
                        payload[0] + global + 1);
                });
        }
        sharded.runTrace(sc.trace);
        sharded.setTouchCallback(nullptr);

        const auto sub = sharded.splitter().splitTrace(sc.trace);
        for (std::uint32_t s = 0; s < sharded.numShards(); ++s) {
            const std::string what = "shard " + std::to_string(s);
            Laoram reference(sharded.shardEngineConfigFor(s));
            if (sc.cfg.base.payloadBytes > 0) {
                const ShardSplitter &split = sharded.splitter();
                reference.setTouchCallback(
                    [s, &split](oram::BlockId local,
                                std::vector<std::uint8_t> &payload) {
                        payload[0] = static_cast<std::uint8_t>(
                            payload[0] + split.globalId(s, local) + 1);
                    });
            }
            reference.runTrace(sub[s]);
            reference.setTouchCallback(nullptr);

            expectMatchesSnapshot(snapshotOf(reference),
                                  sharded.shard(s), what);
        }
    }
}

} // namespace
} // namespace laoram::core
