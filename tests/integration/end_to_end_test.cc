/**
 * @file
 * End-to-end pipeline test: embedding rows live inside (encrypted)
 * LAORAM payloads, training happens through the oblivious access
 * path, and the result matches an in-the-clear shadow run.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/laoram_client.hh"
#include "core/pipeline.hh"
#include "oram/path_oram.hh"
#include "train/embedding_table.hh"
#include "train/toy_model.hh"
#include "util/rng.hh"
#include "workload/kaggle_synth.hh"

namespace laoram {
namespace {

using oram::BlockId;

constexpr std::uint64_t kRows = 64;
constexpr std::uint64_t kDim = 8;
constexpr std::uint64_t kRowBytes = kDim * sizeof(float);

core::LaoramConfig
oramConfig(bool encrypt)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = kRows;
    cfg.base.blockBytes = 128;
    cfg.base.payloadBytes = kRowBytes;
    cfg.base.encrypt = encrypt;
    cfg.base.seed = 99;
    cfg.superblockSize = 4;
    return cfg;
}

/** Load every row of @p table into the ORAM as block payloads. */
void
loadTable(core::Laoram &oram, const train::EmbeddingTable &table)
{
    std::vector<std::uint8_t> buf;
    for (std::uint64_t r = 0; r < table.rows(); ++r) {
        table.serializeRow(r, buf);
        oram.writeBlock(r, buf);
    }
}

TEST(EndToEnd, ObliviousTrainingMatchesShadowRun)
{
    // Shadow: plain in-memory table updated by exactly the same rule.
    train::EmbeddingTable shadow(kRows, kDim, 7);
    train::EmbeddingTable initial(kRows, kDim, 7);

    core::Laoram oram(oramConfig(/*encrypt=*/true));
    loadTable(oram, initial);

    // Update rule: add 0.25 to every component, once per bin touch.
    std::map<BlockId, int> touches;
    oram.setTouchCallback(
        [&](BlockId id, std::vector<std::uint8_t> &payload) {
            ASSERT_EQ(payload.size(), kRowBytes);
            float vals[kDim];
            std::memcpy(vals, payload.data(), kRowBytes);
            for (auto &v : vals)
                v += 0.25f;
            std::memcpy(payload.data(), vals, kRowBytes);
            ++touches[id];
        });

    workload::KaggleParams kp;
    kp.numBlocks = kRows;
    kp.accesses = 300;
    kp.hotSetSize = 8;
    kp.seed = 3;
    const auto trace = workload::makeKaggleTrace(kp).accesses;
    oram.runTrace(trace);
    oram.setTouchCallback(nullptr);

    // Apply the same number of updates to the shadow.
    for (const auto &[id, n] : touches) {
        auto row = shadow.row(id);
        for (auto &v : row)
            v += 0.25f * static_cast<float>(n);
    }

    // Every row read back through the oblivious path must match.
    std::vector<std::uint8_t> buf;
    for (std::uint64_t r = 0; r < kRows; ++r) {
        oram.readBlock(r, buf);
        float vals[kDim];
        std::memcpy(vals, buf.data(), kRowBytes);
        for (std::uint64_t i = 0; i < kDim; ++i)
            EXPECT_FLOAT_EQ(vals[i], shadow.row(r)[i])
                << "row " << r << " dim " << i;
    }
}

TEST(EndToEnd, LossDecreasesThroughObliviousStorage)
{
    // A real (tiny) training loop where the *only* copy of the
    // embedding table lives inside PathORAM: gather rows via oblivious
    // reads, compute gradients, scatter updates via oblivious writes.
    train::EmbeddingTable init(kRows, kDim, 11);
    train::ToyInteractionModel model(kDim, 13);

    oram::EngineConfig cfg = oramConfig(false).base;
    oram::PathOram storage(cfg);
    {
        std::vector<std::uint8_t> buf;
        for (std::uint64_t r = 0; r < kRows; ++r) {
            init.serializeRow(r, buf);
            storage.writeBlock(r, buf);
        }
    }

    // Synthetic separable labels: rows < kRows/2 -> label 1.
    Rng rng(17);
    auto run_epoch = [&]() {
        double loss_sum = 0;
        int samples = 0;
        for (int s = 0; s < 64; ++s) {
            const BlockId row = rng.nextBounded(kRows);
            const float label = row < kRows / 2 ? 1.0f : 0.0f;

            std::vector<std::uint8_t> buf;
            storage.readBlock(row, buf);
            std::vector<float> vals(kDim);
            std::memcpy(vals.data(), buf.data(), kRowBytes);

            const auto res = model.step({vals}, label);
            loss_sum += res.loss;
            ++samples;

            for (std::uint64_t i = 0; i < kDim; ++i)
                vals[i] -= 0.3f * res.rowGrads[0][i];
            std::memcpy(buf.data(), vals.data(), kRowBytes);
            storage.writeBlock(row, buf);
            model.applyTopGradient(0.3f);
        }
        return loss_sum / samples;
    };

    const double first = run_epoch();
    double last = first;
    for (int e = 0; e < 30; ++e)
        last = run_epoch();
    EXPECT_LT(last, first * 0.7)
        << "training through the ORAM should reduce loss";
}

TEST(EndToEnd, PipelineDrivesTrainingWindows)
{
    core::Laoram oram(oramConfig(false));
    int touched = 0;
    oram.setTouchCallback(
        [&](BlockId, std::vector<std::uint8_t> &) { ++touched; });

    core::PipelineConfig pc;
    pc.windowAccesses = 64;
    core::BatchPipeline pipe(oram, pc);

    workload::KaggleParams kp;
    kp.numBlocks = kRows;
    kp.accesses = 512;
    kp.hotSetSize = 8;
    kp.seed = 5;
    const auto rep = pipe.run(workload::makeKaggleTrace(kp).accesses);

    EXPECT_EQ(rep.windows, 8u);
    EXPECT_GT(touched, 0);
    EXPECT_GT(rep.prepHiddenFraction, 0.9);
}

} // namespace
} // namespace laoram
