/**
 * @file
 * Kill-and-restore differential leg: an engine that dies at a random
 * window boundary — trusted state checkpointed to its sidecar, the
 * process gone — and is restored into a fresh Laoram over the
 * reopened tree must finish the trace byte-identically to a reference
 * engine that never died. Payloads, position map, stash, traffic
 * meters and the simulated clock are all compared via the shared
 * EngineSnapshot helpers, and the restored run's window numbering
 * (PipelineConfig::firstWindowIndex + windowBoundaryHook) is checked
 * to continue the original stream.
 *
 * Runs over both persistent backends: mmap, and a remote-KV node with
 * a server-side tree file. Seeded via LAORAM_DIFF_SEED /
 * LAORAM_DIFF_ITERS like the differential suite.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine_snapshot.hh"
#include "storage/slot_backend.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

constexpr std::uint64_t kWindow = 24;
constexpr std::uint64_t kWindows = 6;

std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "laoram_kill_restore_" + tag;
}

LaoramConfig
baseConfig(bool encrypt, std::uint64_t seed)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 96;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 32;
    cfg.base.encrypt = encrypt;
    cfg.base.seed = seed;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = kWindow;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t accesses, std::uint64_t numBlocks,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> trace;
    trace.reserve(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        trace.push_back(rng.nextBounded(numBlocks));
    return trace;
}

void
fillPayloads(Laoram &engine, const LaoramConfig &cfg)
{
    std::vector<std::uint8_t> buf(cfg.base.payloadBytes);
    for (oram::BlockId id = 0; id < cfg.base.numBlocks; ++id) {
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(id * 131 + i * 7);
        engine.writeBlock(id, buf);
    }
}

PipelineConfig
pipelineConfig()
{
    return PipelineConfig{}
        .withWindowAccesses(kWindow)
        .withPrepThreads(2)
        .withQueueDepth(2);
}

class KillRestore
    : public ::testing::TestWithParam<storage::BackendKind>
{
  protected:
    void
    SetUp() override
    {
        const char *leg =
            GetParam() == storage::BackendKind::MmapFile ? "mmap"
                                                         : "remote";
        tree = tempPath(std::string(leg) + ".tree");
        sidecar = tempPath(std::string(leg) + ".ckpt");
        cleanup();
    }

    void TearDown() override { cleanup(); }

    void
    cleanup()
    {
        std::remove(tree.c_str());
        std::remove(sidecar.c_str());
    }

    storage::StorageConfig
    persistentStorage(bool keepExisting) const
    {
        storage::StorageConfig sc;
        sc.kind = GetParam();
        sc.path = tree;
        sc.keepExisting = keepExisting;
        return sc;
    }

    std::string tree;
    std::string sidecar;
};

TEST_P(KillRestore, RestoredRunFinishesByteIdentically)
{
    const std::uint64_t iters = diffIters();
    Rng pick(diffSeed() ^ 0xC0FFEE);
    for (std::uint64_t it = 0; it < iters; ++it) {
        const std::uint64_t seed = diffSeed() + it * 1009;
        const bool encrypt = (it % 2) == 1;
        const LaoramConfig cfg = baseConfig(encrypt, seed);
        const auto trace = randomTrace(
            kWindow * kWindows, cfg.base.numBlocks, seed + 17);
        // Die after a random number of fully served windows,
        // never 0 (nothing restored) and never all (nothing left).
        const std::uint64_t cut = 1 + pick.nextBounded(kWindows - 1);
        const std::string what = "iter " + std::to_string(it)
                                 + " cut " + std::to_string(cut)
                                 + (encrypt ? " enc" : " plain");
        cleanup();

        // Uninterrupted reference over DRAM (the determinism
        // contract makes backend choice invisible to served bytes).
        Laoram reference(cfg);
        fillPayloads(reference, cfg);
        BatchPipeline(reference, pipelineConfig()).run(trace);
        const EngineSnapshot snap = snapshotOf(reference);

        // The victim serves `cut` windows on a persistent tree,
        // checkpoints at the window boundary, and "dies" (engine
        // destroyed, storage unmapped — the sidecar and tree file
        // are all that survive).
        {
            LaoramConfig vcfg = cfg;
            vcfg.base.storage = persistentStorage(false);
            Laoram victim(vcfg);
            fillPayloads(victim, vcfg);
            const std::vector<oram::BlockId> prefix(
                trace.begin(), trace.begin() + cut * kWindow);
            BatchPipeline(victim, pipelineConfig()).run(prefix);
            ASSERT_EQ(victim.windowsServed(), cut) << what;
            victim.checkpointToFile(sidecar);
        }

        // Restore into a fresh engine over the reopened tree and
        // finish the trace: the remaining windows must carry the
        // original stream numbering (firstWindowIndex) so every
        // window-derived preprocessor path stream lines up.
        LaoramConfig rcfg = cfg;
        rcfg.base.storage = persistentStorage(true);
        rcfg.base.checkpoint.path = sidecar;
        rcfg.base.checkpoint.restore = true;
        Laoram restored(rcfg);
        ASSERT_EQ(restored.windowsServed(), cut) << what;

        std::vector<std::uint64_t> boundaries;
        const std::vector<oram::BlockId> suffix(
            trace.begin() + cut * kWindow, trace.end());
        BatchPipeline(
            restored,
            pipelineConfig()
                .withFirstWindow(restored.windowsServed())
                .withWindowBoundaryHook([&](std::uint64_t w) {
                    boundaries.push_back(w);
                }))
            .run(suffix);

        ASSERT_EQ(boundaries.size(), kWindows - cut) << what;
        for (std::size_t i = 0; i < boundaries.size(); ++i)
            EXPECT_EQ(boundaries[i], cut + i) << what;
        EXPECT_EQ(restored.windowsServed(), kWindows) << what;
        expectMatchesSnapshot(snap, restored, what);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PersistentBackends, KillRestore,
    ::testing::Values(storage::BackendKind::MmapFile,
                      storage::BackendKind::Remote),
    [](const ::testing::TestParamInfo<storage::BackendKind> &i) {
        return i.param == storage::BackendKind::MmapFile ? "Mmap"
                                                         : "Remote";
    });

} // namespace
} // namespace laoram::core
