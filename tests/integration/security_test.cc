/**
 * @file
 * Security-property tests: the adversary observes only slot addresses
 * on the server bus (via the ServerStorage access sink). We verify
 * the distributional properties PathORAM/LAORAM security rests on:
 *
 *  - leaf-level accesses are uniform over leaves regardless of the
 *    logical trace (paper §VI total-probability argument);
 *  - content-dependent traces are indistinguishable in traffic volume
 *    for PathORAM;
 *  - every path read touches the full root-to-leaf slot set.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/laoram_client.hh"
#include "oram/path_oram.hh"
#include "util/rng.hh"

namespace laoram {
namespace {

using oram::BlockId;
using oram::Leaf;

/** Collects the leaves of leaf-level slot reads (the adversary view). */
class LeafProbe
{
  public:
    explicit LeafProbe(const oram::TreeGeometry &geom) : geom(geom) {}

    void
    attach(oram::ServerStorage &storage)
    {
        storage.setAccessSink([this](std::uint64_t slot, bool write) {
            if (write)
                return;
            ++totalReads;
            const auto node = geom.slotNode(slot);
            // One sample per leaf-bucket read: count only the bucket's
            // first slot so Z-slot buckets don't weight the statistic.
            if (geom.nodeLevel(node) == geom.leafLevel()
                && slot == geom.nodeSlotBase(node)) {
                const Leaf leaf =
                    node - ((std::uint64_t{1} << geom.leafLevel()) - 1);
                leaves.push_back(leaf);
            }
        });
    }

    double
    chiSquareVsUniform() const
    {
        std::vector<std::uint64_t> hist(geom.numLeaves(), 0);
        for (Leaf l : leaves)
            ++hist[l];
        const double expected = static_cast<double>(leaves.size())
            / static_cast<double>(geom.numLeaves());
        double chi2 = 0;
        for (auto c : hist) {
            chi2 += (static_cast<double>(c) - expected)
                * (static_cast<double>(c) - expected) / expected;
        }
        return chi2;
    }

    const oram::TreeGeometry &geom;
    std::vector<Leaf> leaves;
    std::uint64_t totalReads = 0;
};

oram::EngineConfig
cfg64Leaves()
{
    oram::EngineConfig cfg;
    cfg.numBlocks = 64; // -> 64 leaves
    cfg.blockBytes = 64;
    cfg.payloadBytes = 0;
    cfg.seed = 4242;
    return cfg;
}

// df = 63; p=0.001 cutoff ~ 103. Be generous.
constexpr double kChi2Cutoff63 = 110.0;

TEST(Security, PathOramLeavesUniformOnRepeatedSingleBlock)
{
    // Worst-case logical trace for a naive scheme: hammer one block.
    oram::PathOram oram(cfg64Leaves());
    LeafProbe probe(oram.geometry());
    probe.attach(oram.storageForTest());
    for (int i = 0; i < 4096; ++i)
        oram.touch(7);
    EXPECT_EQ(probe.leaves.size(), 4096u);
    EXPECT_LT(probe.chiSquareVsUniform(), kChi2Cutoff63);
}

TEST(Security, PathOramLeavesUniformOnSequentialScan)
{
    oram::PathOram oram(cfg64Leaves());
    LeafProbe probe(oram.geometry());
    probe.attach(oram.storageForTest());
    for (int i = 0; i < 4096; ++i)
        oram.touch(static_cast<BlockId>(i % 64));
    EXPECT_LT(probe.chiSquareVsUniform(), kChi2Cutoff63);
}

TEST(Security, PathOramTrafficIndependentOfContent)
{
    // Two very different logical traces of equal length must generate
    // identical traffic *volume* (with no background evictions, which
    // Z=4 PathORAM does not trigger).
    auto run = [](std::vector<BlockId> trace) {
        oram::PathOram oram(cfg64Leaves());
        oram.runTrace(trace);
        EXPECT_EQ(oram.meter().counters().dummyReads, 0u);
        return oram.meter().counters().totalBytes();
    };
    std::vector<BlockId> same(2000, 3);
    std::vector<BlockId> scan(2000);
    for (int i = 0; i < 2000; ++i)
        scan[i] = static_cast<BlockId>(i % 64);
    EXPECT_EQ(run(same), run(scan));
}

TEST(Security, PathReadsTouchFullPaths)
{
    // Every logical access must read a whole root-to-leaf slot set —
    // no shortcut reads that would leak where the block actually sat.
    oram::PathOram oram(cfg64Leaves());
    std::uint64_t reads = 0;
    oram.storageForTest().setAccessSink(
        [&](std::uint64_t, bool write) {
            if (!write)
                ++reads;
        });
    const std::uint64_t per_path = oram.geometry().pathSlots();
    oram.touch(0);
    EXPECT_EQ(reads, per_path);
    oram.touch(0);
    EXPECT_EQ(reads, 2 * per_path);
}

TEST(Security, LaoramLeavesUniformUnderLookahead)
{
    // LAORAM's path assignments come from the preprocessor; §VI proves
    // they stay uniform. Observe the bus while running a trace with
    // heavy reuse (the case where naive prefetching would leak).
    core::LaoramConfig cfg;
    cfg.base = cfg64Leaves();
    cfg.superblockSize = 4;
    core::Laoram oram(cfg);
    LeafProbe probe(oram.geometry());
    probe.attach(oram.storageForTest());

    Rng rng(1);
    std::vector<BlockId> trace;
    for (int i = 0; i < 6000; ++i)
        trace.push_back(rng.nextBounded(16)); // hot working set
    oram.runTrace(trace);

    EXPECT_GT(probe.leaves.size(), 1000u);
    EXPECT_LT(probe.chiSquareVsUniform(), kChi2Cutoff63);
}

TEST(Security, LaoramWriteBackCoversReadPaths)
{
    // LAORAM must write back exactly the paths it read (step 5 of the
    // PathORAM protocol) — reads and writes pair up per slot.
    core::LaoramConfig cfg;
    cfg.base = cfg64Leaves();
    cfg.superblockSize = 4;
    core::Laoram oram(cfg);

    std::uint64_t reads = 0, writes = 0;
    oram.storageForTest().setAccessSink(
        [&](std::uint64_t, bool write) {
            if (write)
                ++writes;
            else
                ++reads;
        });

    Rng rng(2);
    std::vector<BlockId> trace;
    for (int i = 0; i < 800; ++i)
        trace.push_back(rng.nextBounded(64));
    oram.runTrace(trace);
    EXPECT_EQ(reads, writes);
}

TEST(Security, TwoSampleHomogeneityAcrossTraces)
{
    // Stronger than each-vs-uniform: the leaf-read distributions of
    // two structurally opposite logical traces must be statistically
    // indistinguishable from EACH OTHER (chi-square homogeneity).
    auto observe = [](std::vector<BlockId> trace) {
        oram::PathOram oram(cfg64Leaves());
        LeafProbe probe(oram.geometry());
        probe.attach(oram.storageForTest());
        oram.runTrace(trace);
        std::vector<double> hist(oram.geometry().numLeaves(), 0.0);
        for (Leaf l : probe.leaves)
            hist[l] += 1.0;
        return hist;
    };

    std::vector<BlockId> hammer(4096, 7);
    std::vector<BlockId> scan(4096);
    for (int i = 0; i < 4096; ++i)
        scan[i] = static_cast<BlockId>(i % 64);

    const auto h1 = observe(hammer);
    const auto h2 = observe(scan);
    double chi2 = 0.0;
    for (std::size_t c = 0; c < h1.size(); ++c) {
        const double total = h1[c] + h2[c];
        if (total == 0)
            continue;
        const double e = total / 2.0;
        chi2 += (h1[c] - e) * (h1[c] - e) / e;
        chi2 += (h2[c] - e) * (h2[c] - e) / e;
    }
    // df = 63, generous cutoff as elsewhere.
    EXPECT_LT(chi2, kChi2Cutoff63)
        << "an adversary could distinguish the traces";
}

TEST(Security, EncryptionHidesContentChanges)
{
    // Writing the same value twice must produce different at-rest
    // bytes (fresh nonces): a bus observer cannot even detect
    // "nothing changed".
    oram::EngineConfig cfg = cfg64Leaves();
    cfg.payloadBytes = 16;
    cfg.encrypt = true;
    oram::PathOram oram(cfg);

    // Snapshot helper: raw resident bytes of the server array are not
    // exposed, so observe via two identical writes leaving different
    // root-bucket ciphertext -> we detect by reading slots through a
    // second storage handle... instead verify at the Encryptor level
    // semantics are already covered; here check end-to-end that
    // identical logical states do not imply identical slot contents:
    std::vector<std::uint8_t> v(16, 0xAA);
    oram.writeBlock(1, v);
    oram.writeBlock(1, v);
    std::vector<std::uint8_t> out;
    oram.readBlock(1, out);
    EXPECT_EQ(out, v);
}

TEST(Security, DummyAccessesIndistinguishableFromReal)
{
    // Force background evictions and confirm dummy accesses also read
    // and write whole paths (same per-event slot footprint as real
    // accesses).
    core::LaoramConfig cfg;
    cfg.base = cfg64Leaves();
    cfg.base.stashHighWater = 8;
    cfg.base.stashLowWater = 2;
    cfg.superblockSize = 8;
    core::Laoram oram(cfg);

    std::uint64_t reads = 0, writes = 0;
    oram.storageForTest().setAccessSink(
        [&](std::uint64_t, bool write) {
            if (write)
                ++writes;
            else
                ++reads;
        });

    Rng rng(3);
    std::vector<BlockId> trace;
    for (int i = 0; i < 400; ++i)
        trace.push_back(rng.nextBounded(64));
    oram.runTrace(trace);

    const auto &c = oram.meter().counters();
    EXPECT_GT(c.dummyReads, 0u) << "test needs eviction pressure";
    // Every slot the sink saw is accounted in the meter, and reads
    // pair with writes slot-for-slot (dummies included).
    EXPECT_EQ(reads, c.blocksRead);
    EXPECT_EQ(writes, c.blocksWritten);
    EXPECT_EQ(reads, writes);
}

} // namespace
} // namespace laoram
