/**
 * @file
 * Long-haul randomized stress runs: interleaved reads/writes/touches
 * with hostile access patterns, periodic full-tree audits, and
 * cross-engine result comparison — parameterized over seeds so each
 * instance explores a different trajectory.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/laoram_client.hh"
#include "oram/evictor.hh"
#include "oram/path_oram.hh"
#include "oram/pro_oram.hh"
#include "oram/ring_oram.hh"
#include "util/rng.hh"

namespace laoram {
namespace {

using oram::BlockId;

constexpr std::uint64_t kBlocks = 192;
constexpr std::uint64_t kPayload = 8;

class StressSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

/** Hostile pattern mix: hot hammering, scans, random, bursts. */
BlockId
nextAddress(Rng &rng, int step)
{
    switch ((step / 50) % 4) {
      case 0: // hammer a tiny hot set
        return rng.nextBounded(4);
      case 1: // sequential scan
        return static_cast<BlockId>(step % kBlocks);
      case 2: // uniform random
        return rng.nextBounded(kBlocks);
      default: // strided
        return static_cast<BlockId>((step * 17) % kBlocks);
    }
}

TEST_P(StressSeeds, PathOramSurvivesHostileMix)
{
    oram::EngineConfig cfg;
    cfg.numBlocks = kBlocks;
    cfg.blockBytes = 64;
    cfg.payloadBytes = kPayload;
    cfg.encrypt = (GetParam() % 2) == 0;
    cfg.seed = GetParam();
    oram::PathOram oram(cfg);

    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(GetParam() * 31 + 1);
    for (int step = 0; step < 1200; ++step) {
        const BlockId id = nextAddress(rng, step);
        if (rng.nextBool(0.4)) {
            std::vector<std::uint8_t> data(
                kPayload, static_cast<std::uint8_t>(step));
            oram.writeBlock(id, data);
            ref[id] = data;
        } else {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            const auto expect =
                ref.count(id) ? ref[id]
                              : std::vector<std::uint8_t>(kPayload, 0);
            ASSERT_EQ(out, expect) << "step " << step;
        }
        if (step % 400 == 399) {
            ASSERT_EQ(oram::auditTree(oram.geometry(),
                                      oram.storageForAudit(),
                                      oram.stashForAudit(),
                                      oram.posmapForAudit()),
                      "")
                << "step " << step;
        }
    }
}

TEST_P(StressSeeds, LaoramTraceThenPointAccessesConsistent)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = kBlocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = kPayload;
    cfg.base.seed = GetParam();
    cfg.superblockSize = 2 + GetParam() % 7;
    cfg.batchAccesses = (GetParam() % 3 == 0) ? 64 : 0;
    core::Laoram oram(cfg);

    // Phase 1: trained trace with payload mutations.
    std::map<BlockId, std::uint8_t> shadow;
    oram.setTouchCallback(
        [&](BlockId id, std::vector<std::uint8_t> &payload) {
            const auto v = static_cast<std::uint8_t>(shadow[id] + 3);
            shadow[id] = v;
            payload.assign(kPayload, v);
        });
    Rng rng(GetParam() * 101 + 7);
    std::vector<BlockId> trace;
    for (int i = 0; i < 900; ++i)
        trace.push_back(nextAddress(rng, i));
    oram.runTrace(trace);
    oram.setTouchCallback(nullptr);

    // Phase 2: interleave point writes and reads.
    for (int step = 0; step < 300; ++step) {
        const BlockId id = rng.nextBounded(kBlocks);
        if (rng.nextBool(0.3)) {
            std::vector<std::uint8_t> data(
                kPayload, static_cast<std::uint8_t>(0x80 + step));
            oram.writeBlock(id, data);
            shadow[id] = static_cast<std::uint8_t>(0x80 + step);
        } else {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            const std::uint8_t v =
                shadow.count(id) ? shadow[id] : 0;
            ASSERT_EQ(out, std::vector<std::uint8_t>(kPayload, v))
                << "block " << id << " step " << step;
        }
    }
    ASSERT_EQ(oram::auditTree(oram.geometry(), oram.storageForAudit(),
                              oram.stashForAudit(),
                              oram.posmapForAudit()),
              "");
}

TEST_P(StressSeeds, RingOramHostileMix)
{
    oram::RingOramConfig cfg;
    cfg.base.numBlocks = kBlocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = kPayload;
    cfg.base.seed = GetParam();
    cfg.realZ = 4;
    cfg.dummies = 1 + GetParam() % 5;
    cfg.evictEvery = 1 + GetParam() % 4;
    oram::RingOram oram(cfg);

    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(GetParam() * 13 + 5);
    for (int step = 0; step < 900; ++step) {
        const BlockId id = nextAddress(rng, step);
        if (rng.nextBool(0.4)) {
            std::vector<std::uint8_t> data(
                kPayload, static_cast<std::uint8_t>(step));
            oram.writeBlock(id, data);
            ref[id] = data;
        } else if (ref.count(id)) {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            ASSERT_EQ(out, ref[id]) << "step " << step;
        }
        if (step % 300 == 299) {
            ASSERT_EQ(oram.auditRing(), "") << "step " << step;
        }
    }
}

TEST_P(StressSeeds, EnginesAgreeOnFinalState)
{
    // Same hostile op sequence through three engines; all final
    // contents must agree.
    oram::EngineConfig base;
    base.numBlocks = kBlocks;
    base.blockBytes = 64;
    base.payloadBytes = kPayload;
    base.seed = GetParam();

    oram::StaticSuperblockConfig scfg;
    scfg.base = base;
    scfg.superblockSize = 4;

    core::LaoramConfig lcfg;
    lcfg.base = base;
    lcfg.superblockSize = 4;

    std::vector<std::unique_ptr<oram::OramEngine>> engines;
    engines.push_back(std::make_unique<oram::PathOram>(base));
    engines.push_back(
        std::make_unique<oram::StaticSuperblockOram>(scfg));
    engines.push_back(std::make_unique<core::Laoram>(lcfg));

    Rng rng(GetParam() * 7 + 3);
    for (int step = 0; step < 500; ++step) {
        const BlockId id = nextAddress(rng, step);
        std::vector<std::uint8_t> data(
            kPayload, static_cast<std::uint8_t>(step ^ 0x55));
        for (auto &e : engines)
            e->writeBlock(id, data);
    }
    for (BlockId id = 0; id < kBlocks; ++id) {
        std::vector<std::uint8_t> first;
        engines[0]->readBlock(id, first);
        for (std::size_t e = 1; e < engines.size(); ++e) {
            std::vector<std::uint8_t> other;
            engines[e]->readBlock(id, other);
            ASSERT_EQ(other, first)
                << engines[e]->name() << " block " << id;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

} // namespace
} // namespace laoram
