/**
 * @file
 * Hot-cache obliviousness differential suite.
 *
 * The cache tier's non-negotiable contract: attaching a trusted-client
 * hot-row cache changes WHICH BYTES the client trusts, never WHAT THE
 * SERVER SEES. Every scenario here runs the same workload with the
 * cache off (reference) and on, recording the server-visible physical
 * access sequence through ServerStorage's adversary's-eye AccessSink,
 * and requires:
 *
 *   - the (slot, isWrite) sequence is identical element for element —
 *     the cache consumes no engine randomness and every scheduled
 *     access still executes as a dummy on hits;
 *   - the full observable client state (payloads, position map, stash,
 *     counters, simulated clock) is identical — a hit serves the same
 *     bytes the ORAM path would have.
 *
 * Covered legs: standalone serial + pipelined (plain and encrypted,
 * LRU and LFU), sharded trace serving, and the online frontend with a
 * pre-submitted session stream (admission fast path + write-back
 * coalescing active, batch results compared byte for byte).
 *
 * Seed control: LAORAM_DIFF_SEED / LAORAM_DIFF_ITERS as in
 * differential_test.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hh"
#include "core/sharded_laoram.hh"
#include "serve/frontend.hh"
#include "util/rng.hh"

#include "engine_snapshot.hh"

namespace laoram::core {
namespace {

/** One recorded physical access, exactly what a bus probe sees. */
using ServerTrace = std::vector<std::pair<std::uint64_t, bool>>;

void
recordInto(Laoram &engine, ServerTrace *trace)
{
    engine.storageForTest().setAccessSink(
        [trace](std::uint64_t slot, bool isWrite) {
            trace->emplace_back(slot, isWrite);
        });
}

void
expectSameTrace(const ServerTrace &ref, const ServerTrace &got,
                const std::string &what)
{
    ASSERT_EQ(ref.size(), got.size())
        << what << ": server saw a different number of accesses";
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], got[i])
            << what << ": server trace diverges at access " << i
            << " (slot " << ref[i].first << " w=" << ref[i].second
            << " vs slot " << got[i].first << " w=" << got[i].second
            << ")";
    }
}

LaoramConfig
baseConfig(bool encrypt, std::uint64_t seed)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 256;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 16;
    cfg.base.encrypt = encrypt;
    cfg.base.seed = seed;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = 64;
    return cfg;
}

std::vector<oram::BlockId>
hotTrace(std::uint64_t numBlocks, std::uint64_t length, Rng &rng)
{
    // Zipf-ish: half the stream on a hot 1/8th so the cache actually
    // hits, the rest uniform so it also evicts.
    std::vector<oram::BlockId> trace;
    trace.reserve(length);
    const std::uint64_t hot = 1 + numBlocks / 8;
    for (std::uint64_t i = 0; i < length; ++i)
        trace.push_back(rng.nextBool(0.5) ? rng.nextBounded(hot)
                                          : rng.nextBounded(numBlocks));
    return trace;
}

Laoram::TouchFn
accumulatingTouch()
{
    return [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
        payload[0] = static_cast<std::uint8_t>(payload[0] + id + 1);
    };
}

TEST(CacheDifferential, StandaloneTraceAndStateIdenticalCacheOnOff)
{
    Rng rng(diffSeed() ^ 0xCACEULL);
    for (const bool encrypt : {false, true}) {
        const LaoramConfig cfg = baseConfig(encrypt, rng.next());
        const auto trace =
            hotTrace(cfg.base.numBlocks, 1200, rng);

        // Reference: cache off, serial.
        ServerTrace refTrace;
        Laoram reference(cfg);
        recordInto(reference, &refTrace);
        reference.setTouchCallback(accumulatingTouch());
        reference.runTrace(trace);
        reference.setTouchCallback(nullptr);
        reference.storageForTest().setAccessSink(nullptr);
        const EngineSnapshot refSnap = snapshotOf(reference);

        for (const cache::CachePolicy policy :
             {cache::CachePolicy::Lru, cache::CachePolicy::Lfu}) {
            const std::string what =
                std::string(encrypt ? "encrypted" : "plain") + "/"
                + cache::policyName(policy);
            SCOPED_TRACE(what);

            // Cache sized to a fraction of the block space: hits on
            // the hot set, evictions on the uniform tail.
            LaoramConfig ccfg = cfg;
            ccfg.cache.capacityBytes =
                (cfg.base.numBlocks / 4) * cfg.base.payloadBytes;
            ccfg.cache.policy = policy;

            // Serial with cache.
            ServerTrace serialTrace;
            Laoram cached(ccfg);
            recordInto(cached, &serialTrace);
            cached.setTouchCallback(accumulatingTouch());
            cached.runTrace(trace);
            cached.setTouchCallback(nullptr);
            cached.storageForTest().setAccessSink(nullptr);
            EXPECT_GT(cached.hotCache()->stats().hits, 0u) << what;
            EXPECT_GT(cached.hotCache()->stats().evictions, 0u)
                << what;
            expectSameTrace(refTrace, serialTrace, what + " serial");
            expectMatchesSnapshot(refSnap, cached, what + " serial");

            // Concurrent pipeline with cache.
            ServerTrace pipedTrace;
            Laoram piped(ccfg);
            recordInto(piped, &pipedTrace);
            piped.setTouchCallback(accumulatingTouch());
            PipelineConfig pc;
            pc.windowAccesses = cfg.lookaheadWindow;
            pc.prepThreads = 2;
            pc.mode = PipelineMode::Concurrent;
            BatchPipeline pipe(piped, pc);
            pipe.run(trace);
            piped.setTouchCallback(nullptr);
            piped.storageForTest().setAccessSink(nullptr);
            expectSameTrace(refTrace, pipedTrace, what + " piped");
            expectMatchesSnapshot(refSnap, piped, what + " piped");
        }
    }
}

TEST(CacheDifferential, ShardedTraceAndStateIdenticalCacheOnOff)
{
    Rng rng(diffSeed() ^ 0x5CACEULL);
    const LaoramConfig ecfg = baseConfig(false, rng.next());
    const auto trace = hotTrace(ecfg.base.numBlocks, 1500, rng);

    ShardedLaoramConfig scfg;
    scfg.engine = ecfg;
    scfg.numShards = 2;
    scfg.pipeline.windowAccesses = ecfg.lookaheadWindow;
    scfg.pipeline.prepThreads = 2;

    const auto runSharded = [&](const ShardedLaoramConfig &cfg,
                                std::vector<ServerTrace> *traces) {
        auto engine = std::make_unique<ShardedLaoram>(cfg);
        traces->resize(engine->numShards());
        for (std::uint32_t s = 0; s < engine->numShards(); ++s)
            recordInto(engine->shard(s), &(*traces)[s]);
        engine->setTouchCallback(
            [](oram::BlockId global,
               std::vector<std::uint8_t> &payload) {
                payload[0] =
                    static_cast<std::uint8_t>(payload[0] + global + 1);
            });
        engine->runTrace(trace);
        engine->setTouchCallback(nullptr);
        for (std::uint32_t s = 0; s < engine->numShards(); ++s)
            engine->shard(s).storageForTest().setAccessSink(nullptr);
        return engine;
    };

    std::vector<ServerTrace> refTraces;
    const auto reference = runSharded(scfg, &refTraces);

    ShardedLaoramConfig ccfg = scfg;
    ccfg.engine.cache.capacityBytes =
        (ecfg.base.numBlocks / 4) * ecfg.base.payloadBytes;
    std::vector<ServerTrace> cachedTraces;
    const auto cached = runSharded(ccfg, &cachedTraces);

    std::uint64_t totalHits = 0;
    for (std::uint32_t s = 0; s < reference->numShards(); ++s) {
        const std::string what = "shard " + std::to_string(s);
        totalHits += cached->shard(s).hotCache()->stats().hits;
        expectSameTrace(refTraces[s], cachedTraces[s], what);
        expectMatchesSnapshot(snapshotOf(reference->shard(s)),
                              cached->shard(s), what);
    }
    EXPECT_GT(totalHits, 0u);
}

TEST(CacheDifferential, FrontendFastPathKeepsTraceAndResultsIdentical)
{
    Rng rng(diffSeed() ^ 0xF5CACEULL);
    constexpr std::uint64_t kBlocks = 256;
    constexpr std::uint64_t kPayload = 16;
    constexpr std::uint64_t kBatches = 48;
    constexpr std::uint64_t kOpsPerBatch = 16;

    // One pre-generated session stream (update-heavy on a hot set so
    // admission hits and write-back coalescing both trigger).
    struct GenOp
    {
        bool update;
        oram::BlockId id;
        std::uint8_t fill;
    };
    std::vector<std::vector<GenOp>> script(kBatches);
    for (auto &batch : script) {
        batch.reserve(kOpsPerBatch);
        for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) {
            GenOp op;
            op.id = rng.nextBool(0.6)
                        ? rng.nextBounded(1 + kBlocks / 8)
                        : rng.nextBounded(kBlocks);
            op.update = rng.nextBool(0.5);
            op.fill = static_cast<std::uint8_t>(rng.nextBounded(256));
            batch.push_back(op);
        }
    }

    const auto runFrontend = [&](std::uint64_t cacheBytes,
                                 std::vector<ServerTrace> *traces,
                                 std::vector<serve::BatchResult>
                                     *results) {
        ShardedLaoramConfig cfg;
        cfg.engine.base.numBlocks = kBlocks;
        cfg.engine.base.payloadBytes = kPayload;
        cfg.engine.base.seed = 424242;
        cfg.engine.superblockSize = 4;
        cfg.engine.cache.capacityBytes = cacheBytes;
        cfg.numShards = 2;
        cfg.pipeline.windowAccesses = 32;
        cfg.pipeline.mode = PipelineMode::Concurrent;
        auto engine = std::make_unique<ShardedLaoram>(cfg);
        for (std::uint32_t s = 0; s < engine->numShards(); ++s)
            recordInto(engine->shard(s), &(*traces)[s]);

        serve::ServeFrontend frontend(*engine);
        serve::Session session = frontend.session();
        // Submit the whole stream before serving starts: admission
        // order (and therefore window composition) is then a pure
        // function of the script, so the cache-on and cache-off runs
        // coalesce identical windows.
        std::vector<std::future<serve::BatchResult>> futures;
        for (const auto &genBatch : script) {
            serve::Batch batch;
            for (const GenOp &op : genBatch) {
                if (op.update)
                    batch.ops.push_back(serve::Op::update(
                        op.id, std::vector<std::uint8_t>(kPayload,
                                                         op.fill)));
                else
                    batch.ops.push_back(serve::Op::lookup(op.id));
            }
            futures.push_back(session.submit(std::move(batch)));
        }
        frontend.start();
        // stop() drains everything admitted (including the final
        // partial window), so the futures are all ready after it.
        frontend.stop();
        for (auto &f : futures)
            results->push_back(f.get());
        for (std::uint32_t s = 0; s < engine->numShards(); ++s)
            engine->shard(s).storageForTest().setAccessSink(nullptr);
        return engine;
    };

    std::vector<ServerTrace> refTraces(2), cachedTraces(2);
    std::vector<serve::BatchResult> refResults, cachedResults;
    const auto reference = runFrontend(0, &refTraces, &refResults);
    const auto cached = runFrontend(
        (kBlocks / 4) * kPayload, &cachedTraces, &cachedResults);

    // The fast path actually fired (hot set + pre-warmed rows).
    std::uint64_t admissionHits = 0, coalesced = 0;
    for (std::uint32_t s = 0; s < cached->numShards(); ++s) {
        const cache::CacheStats st =
            cached->shard(s).hotCache()->stats();
        admissionHits += st.admissionHits;
        coalesced += st.writebackCoalesced;
    }
    EXPECT_GT(admissionHits, 0u);
    EXPECT_EQ(admissionHits, coalesced)
        << "every admission-time op must flush into its scheduled "
           "access";

    // Server-visible traces identical per shard; client state too.
    for (std::uint32_t s = 0; s < reference->numShards(); ++s) {
        const std::string what = "shard " + std::to_string(s);
        expectSameTrace(refTraces[s], cachedTraces[s], what);
        expectMatchesSnapshot(snapshotOf(reference->shard(s)),
                              cached->shard(s), what);
    }

    // And the answers clients saw are byte-identical: a lookup served
    // at admission returns exactly what the written-back path returns.
    ASSERT_EQ(refResults.size(), cachedResults.size());
    for (std::size_t b = 0; b < refResults.size(); ++b) {
        ASSERT_EQ(refResults[b].results.size(),
                  cachedResults[b].results.size());
        for (std::size_t i = 0; i < refResults[b].results.size(); ++i) {
            ASSERT_EQ(refResults[b].results[i].payload,
                      cachedResults[b].results[i].payload)
                << "batch " << b << " op " << i
                << " answered differently with the cache on";
        }
    }
}

} // namespace
} // namespace laoram::core
