/**
 * @file
 * Shared helpers of the randomized determinism suites: capture the
 * full observable client state of a finished engine once, then check
 * other engines against it byte for byte. Used by the differential
 * suite (trace serving paths) and the session-replay suite (online
 * frontend), so a divergence in either reads the same way.
 *
 * Seed control follows the repo-wide convention:
 *   LAORAM_DIFF_SEED   base seed (default 1)
 *   LAORAM_DIFF_ITERS  iterations (default 6)
 */

#ifndef LAORAM_TESTS_INTEGRATION_ENGINE_SNAPSHOT_HH
#define LAORAM_TESTS_INTEGRATION_ENGINE_SNAPSHOT_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/laoram_client.hh"
#include "mem/traffic_meter.hh"

namespace laoram::core {

inline std::uint64_t
envUint(const char *name, std::uint64_t def)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return def;
    return std::strtoull(value, nullptr, 10);
}

inline std::uint64_t
diffSeed()
{
    return envUint("LAORAM_DIFF_SEED", 1);
}

inline std::uint64_t
diffIters()
{
    return envUint("LAORAM_DIFF_ITERS", 6);
}

/**
 * The full observable client state of a finished run, captured once
 * so several legs can be checked against one reference without
 * re-running (or mutating) it.
 */
struct EngineSnapshot
{
    mem::TrafficCounters counters;
    double simNs = 0.0;
    std::uint64_t stashSize = 0;
    std::vector<oram::Leaf> posmap;
    std::uint64_t binsFormed = 0;
    std::uint64_t futureLinked = 0;
    std::vector<std::vector<std::uint8_t>> payloads;
};

inline EngineSnapshot
snapshotOf(Laoram &engine)
{
    EngineSnapshot snap;
    snap.counters = engine.meter().counters();
    snap.simNs = engine.meter().clock().nanoseconds();
    snap.stashSize = engine.stashSize();
    snap.posmap.reserve(engine.posmapForAudit().size());
    for (oram::BlockId id = 0; id < engine.posmapForAudit().size();
         ++id)
        snap.posmap.push_back(engine.posmapForAudit().get(id));
    snap.binsFormed = engine.binsFormed();
    snap.futureLinked = engine.futureLinkedMembers();
    // Payload readback last: it advances positions and counters (all
    // captured above) but never the payload bytes themselves, so the
    // snapshot stays valid for comparing other engines' readbacks.
    if (engine.laoramConfig().base.payloadBytes > 0) {
        snap.payloads.resize(engine.laoramConfig().base.numBlocks);
        for (oram::BlockId id = 0;
             id < engine.laoramConfig().base.numBlocks; ++id)
            engine.readBlock(id, snap.payloads[id]);
    }
    return snap;
}

/** Full observable client state must match the reference snapshot. */
inline void
expectMatchesSnapshot(const EngineSnapshot &snap, Laoram &engine,
                      const std::string &what)
{
    const auto &ca = snap.counters;
    const auto &cb = engine.meter().counters();
    EXPECT_EQ(ca.logicalAccesses, cb.logicalAccesses) << what;
    EXPECT_EQ(ca.pathReads, cb.pathReads) << what;
    EXPECT_EQ(ca.pathWrites, cb.pathWrites) << what;
    EXPECT_EQ(ca.dummyReads, cb.dummyReads) << what;
    EXPECT_EQ(ca.bytesRead, cb.bytesRead) << what;
    EXPECT_EQ(ca.bytesWritten, cb.bytesWritten) << what;
    EXPECT_EQ(ca.stashPeak, cb.stashPeak) << what;
    EXPECT_DOUBLE_EQ(snap.simNs,
                     engine.meter().clock().nanoseconds())
        << what;

    EXPECT_EQ(snap.stashSize, engine.stashSize()) << what;
    ASSERT_EQ(snap.posmap.size(), engine.posmapForAudit().size())
        << what;
    for (oram::BlockId id = 0; id < snap.posmap.size(); ++id) {
        ASSERT_EQ(snap.posmap[id], engine.posmapForAudit().get(id))
            << what << ": posmap diverges at block " << id;
    }
    EXPECT_EQ(snap.binsFormed, engine.binsFormed()) << what;
    EXPECT_EQ(snap.futureLinked, engine.futureLinkedMembers()) << what;

    // Payload readback must match byte for byte.
    std::vector<std::uint8_t> buf;
    for (oram::BlockId id = 0; id < snap.payloads.size(); ++id) {
        engine.readBlock(id, buf);
        ASSERT_EQ(snap.payloads[id], buf)
            << what << ": payload diverges at block " << id;
    }
}

} // namespace laoram::core

#endif // LAORAM_TESTS_INTEGRATION_ENGINE_SNAPSHOT_HH
