/**
 * @file
 * Randomized session-replay determinism suite for the online serving
 * frontend.
 *
 * The frontend's determinism contract: window contents are a pure
 * function of each shard lane's *arrival order* of operations
 * (serve/frontend.hh). This suite fixes arrival order — one submitter
 * thread, round-robin over the sessions, everything admitted before
 * serving starts — and replays the same per-session operation
 * sequences (derived from per-session seeds) against frontends with
 * different concurrency knobs: preprocessor-pool sizes, reorder queue
 * depths, serving-pool spellings (the frontend pins the serving pool
 * to one lane per shard, so 0 and numShards are the two spellings of
 * the same pool). Every replay must land on byte-identical payloads,
 * position maps, stashes, traffic counters and lookup results.
 *
 * Seed control matches the differential suite (engine_snapshot.hh):
 *   LAORAM_DIFF_SEED   base seed (default 1)
 *   LAORAM_DIFF_ITERS  iterations (default 6)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "serve/frontend.hh"
#include "util/rng.hh"

#include "engine_snapshot.hh"

namespace laoram::core {
namespace {

using serve::Batch;
using serve::BatchResult;
using serve::Op;
using serve::ServeFrontend;
using serve::Session;

/** One drawn serving scenario: engine shape + per-session traffic. */
struct ReplayScenario
{
    ShardedLaoramConfig cfg;
    std::uint64_t queueDepth = 1;

    /** sessionBatches[s][b] is session s's b-th batch. */
    std::vector<std::vector<Batch>> sessionBatches;

    std::string
    describe() const
    {
        std::uint64_t ops = 0;
        for (const auto &batches : sessionBatches)
            for (const Batch &b : batches)
                ops += b.ops.size();
        return "blocks=" + std::to_string(cfg.engine.base.numBlocks)
               + " shards=" + std::to_string(cfg.numShards)
               + " window="
               + std::to_string(cfg.pipeline.windowAccesses)
               + " sessions="
               + std::to_string(sessionBatches.size())
               + " ops=" + std::to_string(ops)
               + " seed=" + std::to_string(cfg.engine.base.seed);
    }
};

ReplayScenario
drawScenario(Rng &rng)
{
    ReplayScenario sc;
    sc.cfg.engine.base.numBlocks = 128 + rng.nextBounded(384);
    sc.cfg.engine.base.blockBytes = 64;
    sc.cfg.engine.base.payloadBytes = 16 << rng.nextBounded(2);
    sc.cfg.engine.base.encrypt = rng.nextBool(0.5);
    sc.cfg.engine.base.seed = rng.next();
    sc.cfg.engine.superblockSize = std::uint64_t{1}
                                   << rng.nextBounded(3); // 1..4
    sc.cfg.numShards =
        2 + static_cast<std::uint32_t>(rng.nextBounded(2));
    sc.cfg.pipeline.windowAccesses = 16 + rng.nextBounded(49);
    sc.cfg.pipeline.mode = PipelineMode::Concurrent;
    sc.queueDepth = 1 + rng.nextBounded(4);

    // Per-session traffic derived from a per-session seed, so "the
    // same sequences" is reproducible independent of draw order.
    const std::uint64_t sessions = 2 + rng.nextBounded(3);
    const std::uint64_t trafficSeed = rng.next();
    for (std::uint64_t s = 0; s < sessions; ++s) {
        Rng srng(trafficSeed ^ (0x9E3779B97F4A7C15ULL * (s + 1)));
        std::vector<Batch> batches(2 + srng.nextBounded(4));
        for (Batch &batch : batches) {
            const std::uint64_t ops = 8 + srng.nextBounded(25);
            for (std::uint64_t i = 0; i < ops; ++i) {
                const BlockId id =
                    srng.nextBounded(sc.cfg.engine.base.numBlocks);
                if (srng.nextBool(0.4)) {
                    std::vector<std::uint8_t> payload(
                        sc.cfg.engine.base.payloadBytes);
                    for (std::uint8_t &b : payload)
                        b = static_cast<std::uint8_t>(srng.next());
                    batch.ops.push_back(
                        Op::update(id, std::move(payload)));
                } else {
                    batch.ops.push_back(Op::lookup(id));
                }
            }
        }
        sc.sessionBatches.push_back(std::move(batches));
    }
    return sc;
}

/** Everything a replay observably produces. */
struct ReplayOutcome
{
    std::vector<EngineSnapshot> shards;

    /** Lookup payloads in global submission order. */
    std::vector<std::vector<std::uint8_t>> lookups;
};

/**
 * Replay the scenario's sessions once: admit every batch from one
 * thread in round-robin order (the fixed arrival order the contract
 * keys on) before serving starts, then serve to completion.
 */
ReplayOutcome
replayOnce(const ReplayScenario &sc, std::uint32_t prepThreads,
           std::uint64_t queueDepth, std::uint32_t servingThreads)
{
    ShardedLaoramConfig cfg = sc.cfg;
    cfg.pipeline.prepThreads = prepThreads;
    cfg.pipeline.queueDepth = queueDepth;
    cfg.servingThreads = servingThreads;
    ShardedLaoram engine(cfg);

    std::uint64_t totalOps = 0;
    for (const auto &batches : sc.sessionBatches)
        for (const Batch &b : batches)
            totalOps += b.ops.size();

    serve::FrontendConfig fcfg;
    // Room for every operation up front: arrival order is then fully
    // decided before start(), independent of serving speed.
    fcfg.admissionOps = totalOps + 16;
    ServeFrontend frontend(engine, fcfg);

    std::vector<Session> sessions;
    for (std::size_t s = 0; s < sc.sessionBatches.size(); ++s)
        sessions.push_back(frontend.session());

    std::vector<std::future<BatchResult>> futures;
    std::size_t maxBatches = 0;
    for (const auto &batches : sc.sessionBatches)
        maxBatches = std::max(maxBatches, batches.size());
    for (std::size_t b = 0; b < maxBatches; ++b) {
        for (std::size_t s = 0; s < sc.sessionBatches.size(); ++s) {
            if (b < sc.sessionBatches[s].size())
                futures.push_back(
                    sessions[s].submit(sc.sessionBatches[s][b]));
        }
    }

    frontend.start();
    frontend.flush();

    ReplayOutcome out;
    std::size_t f = 0;
    for (std::size_t b = 0; b < maxBatches; ++b) {
        for (std::size_t s = 0; s < sc.sessionBatches.size(); ++s) {
            if (b >= sc.sessionBatches[s].size())
                continue;
            const BatchResult res = futures[f++].get();
            const Batch &batch = sc.sessionBatches[s][b];
            EXPECT_EQ(res.results.size(), batch.ops.size());
            for (std::size_t i = 0; i < res.results.size(); ++i) {
                if (batch.ops[i].type == serve::OpType::Lookup)
                    out.lookups.push_back(res.results[i].payload);
            }
        }
    }
    frontend.stop();

    for (std::uint32_t s = 0; s < engine.numShards(); ++s)
        out.shards.push_back(snapshotOf(engine.shard(s)));
    return out;
}

class SessionReplayDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        std::printf("[ LAORAM   ] session-replay seed=%llu "
                    "iters=%llu\n",
                    static_cast<unsigned long long>(diffSeed()),
                    static_cast<unsigned long long>(diffIters()));
    }
};

TEST_F(SessionReplayDeterminism, ReplayMatchesAcrossPoolSizes)
{
    Rng rng(diffSeed() ^ 0x5E55ULL);
    const std::uint64_t iters = diffIters();
    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        const ReplayScenario sc = drawScenario(rng);
        SCOPED_TRACE("iter " + std::to_string(iter) + ": "
                     + sc.describe());

        const ReplayOutcome ref = replayOnce(
            sc, /*prepThreads=*/1, /*queueDepth=*/1,
            /*servingThreads=*/0);

        struct Leg
        {
            std::uint32_t prepThreads;
            std::uint64_t queueDepth;
            std::uint32_t servingThreads;
        };
        const Leg legs[] = {
            {1, 1, 0},                             // replay twice
            {2, sc.queueDepth, 0},                 // prep pool of 2
            {4, sc.queueDepth, sc.cfg.numShards},  // pool of 4,
                                                   // explicit serving
                                                   // pool spelling
        };
        for (const Leg &leg : legs) {
            const std::string what =
                "P=" + std::to_string(leg.prepThreads)
                + " depth=" + std::to_string(leg.queueDepth)
                + " serving=" + std::to_string(leg.servingThreads);
            SCOPED_TRACE(what);
            const ReplayOutcome got = replayOnce(
                sc, leg.prepThreads, leg.queueDepth,
                leg.servingThreads);

            ASSERT_EQ(got.lookups.size(), ref.lookups.size());
            for (std::size_t i = 0; i < ref.lookups.size(); ++i)
                ASSERT_EQ(got.lookups[i], ref.lookups[i])
                    << what << ": lookup " << i << " diverges";

            ASSERT_EQ(got.shards.size(), ref.shards.size());
            // Both engines are gone by now; compare their captured
            // snapshots field by field.
            for (std::size_t s = 0; s < ref.shards.size(); ++s) {
                const EngineSnapshot &a = ref.shards[s];
                const EngineSnapshot &b = got.shards[s];
                const std::string where =
                    what + ": shard " + std::to_string(s);
                EXPECT_EQ(a.counters.logicalAccesses,
                          b.counters.logicalAccesses)
                    << where;
                EXPECT_EQ(a.counters.pathReads, b.counters.pathReads)
                    << where;
                EXPECT_EQ(a.counters.pathWrites,
                          b.counters.pathWrites)
                    << where;
                EXPECT_EQ(a.counters.bytesRead, b.counters.bytesRead)
                    << where;
                EXPECT_EQ(a.counters.bytesWritten,
                          b.counters.bytesWritten)
                    << where;
                EXPECT_EQ(a.counters.stashPeak, b.counters.stashPeak)
                    << where;
                EXPECT_DOUBLE_EQ(a.simNs, b.simNs) << where;
                EXPECT_EQ(a.stashSize, b.stashSize) << where;
                ASSERT_EQ(a.posmap, b.posmap) << where;
                EXPECT_EQ(a.binsFormed, b.binsFormed) << where;
                EXPECT_EQ(a.futureLinked, b.futureLinked) << where;
                ASSERT_EQ(a.payloads, b.payloads) << where;
            }
        }
    }
}

} // namespace
} // namespace laoram::core
