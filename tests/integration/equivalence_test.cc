/**
 * @file
 * Cross-engine functional equivalence: every ORAM engine is, to the
 * application, a plain key-value store. Identical op sequences must
 * produce identical results across PathORAM, PrORAM (static/dynamic),
 * RingORAM, and LAORAM.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/laoram_client.hh"
#include "oram/path_oram.hh"
#include "oram/pro_oram.hh"
#include "oram/ring_oram.hh"
#include "util/rng.hh"

namespace laoram {
namespace {

using oram::BlockId;
using oram::EngineConfig;
using oram::OramEngine;

constexpr std::uint64_t kBlocks = 96;
constexpr std::uint64_t kPayload = 12;

EngineConfig
baseConfig()
{
    EngineConfig cfg;
    cfg.numBlocks = kBlocks;
    cfg.blockBytes = 64;
    cfg.payloadBytes = kPayload;
    cfg.seed = 5150;
    return cfg;
}

std::vector<std::unique_ptr<OramEngine>>
allEngines()
{
    std::vector<std::unique_ptr<OramEngine>> engines;
    engines.push_back(std::make_unique<oram::PathOram>(baseConfig()));

    oram::StaticSuperblockConfig scfg;
    scfg.base = baseConfig();
    scfg.superblockSize = 4;
    engines.push_back(
        std::make_unique<oram::StaticSuperblockOram>(scfg));

    oram::ProOramConfig pcfg;
    pcfg.base = baseConfig();
    pcfg.groupSize = 4;
    engines.push_back(std::make_unique<oram::ProOram>(pcfg));

    oram::RingOramConfig rcfg;
    rcfg.base = baseConfig();
    engines.push_back(std::make_unique<oram::RingOram>(rcfg));

    core::LaoramConfig lcfg;
    lcfg.base = baseConfig();
    lcfg.superblockSize = 4;
    engines.push_back(std::make_unique<core::Laoram>(lcfg));
    return engines;
}

TEST(Equivalence, AllEnginesMatchReferenceKvStore)
{
    auto engines = allEngines();
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(1);

    for (int step = 0; step < 400; ++step) {
        const BlockId id = rng.nextBounded(kBlocks);
        if (rng.nextBool(0.5)) {
            std::vector<std::uint8_t> data(
                kPayload, static_cast<std::uint8_t>(step));
            for (auto &e : engines)
                e->writeBlock(id, data);
            ref[id] = data;
        } else {
            const std::vector<std::uint8_t> expect =
                ref.count(id) ? ref[id]
                              : std::vector<std::uint8_t>(kPayload, 0);
            for (auto &e : engines) {
                std::vector<std::uint8_t> out;
                e->readBlock(id, out);
                EXPECT_EQ(out, expect)
                    << e->name() << " step " << step << " id " << id;
            }
        }
    }
}

TEST(Equivalence, EnginesReportDistinctNames)
{
    auto engines = allEngines();
    std::map<std::string, int> names;
    for (auto &e : engines)
        ++names[e->name()];
    EXPECT_EQ(names.size(), engines.size());
}

TEST(Equivalence, AllEnginesAccountLogicalAccesses)
{
    auto engines = allEngines();
    Rng rng(2);
    std::vector<BlockId> trace;
    for (int i = 0; i < 120; ++i)
        trace.push_back(rng.nextBounded(kBlocks));
    for (auto &e : engines) {
        e->runTrace(trace);
        EXPECT_EQ(e->meter().counters().logicalAccesses, trace.size())
            << e->name();
    }
}

TEST(Equivalence, AllEnginesAdvanceSimulatedTime)
{
    auto engines = allEngines();
    for (auto &e : engines) {
        e->touch(1);
        EXPECT_GT(e->meter().clock().nanoseconds(), 0.0) << e->name();
    }
}

} // namespace
} // namespace laoram
