/**
 * @file
 * ChaCha20 validated against the RFC 8439 reference vectors.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "crypto/chacha20.hh"

namespace laoram::crypto {
namespace {

Key256
rfcKey()
{
    // 00 01 02 ... 1f
    Key256 key{};
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    return key;
}

TEST(ChaCha20, Rfc8439BlockVector)
{
    // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000,
    // counter 1.
    const Key256 key = rfcKey();
    Nonce96 nonce{};
    nonce[3] = 0x09;
    nonce[7] = 0x4a;

    std::uint8_t out[64];
    ChaCha20::block(key, nonce, 1, out);

    static const std::uint8_t expected[64] = {
        0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
        0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4,
        0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03,
        0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e,
        0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09,
        0x14, 0xc2, 0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2,
        0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
        0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
    };
    EXPECT_EQ(std::memcmp(out, expected, 64), 0);
}

TEST(ChaCha20, Rfc8439EncryptionVector)
{
    // RFC 8439 §2.4.2: the "Ladies and Gentlemen..." plaintext with
    // nonce 000000000000004a00000000 and counter 1.
    const Key256 key = rfcKey();
    Nonce96 nonce{};
    nonce[7] = 0x4a;

    const char *plaintext =
        "Ladies and Gentlemen of the class of '99: If I could offer you "
        "only one tip for the future, sunscreen would be it.";
    std::vector<std::uint8_t> buf(
        reinterpret_cast<const std::uint8_t *>(plaintext),
        reinterpret_cast<const std::uint8_t *>(plaintext)
            + std::strlen(plaintext));

    ChaCha20::xorStream(key, nonce, 1, buf.data(), buf.size());

    static const std::uint8_t expected_head[16] = {
        0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80,
        0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d, 0x69, 0x81,
    };
    ASSERT_GE(buf.size(), 16u);
    EXPECT_EQ(std::memcmp(buf.data(), expected_head, 16), 0);
}

TEST(ChaCha20, XorStreamRoundTrips)
{
    const Key256 key = rfcKey();
    Nonce96 nonce{};
    nonce[0] = 0x42;
    std::vector<std::uint8_t> data(333);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const std::vector<std::uint8_t> original = data;

    ChaCha20::xorStream(key, nonce, 0, data.data(), data.size());
    EXPECT_NE(data, original);
    ChaCha20::xorStream(key, nonce, 0, data.data(), data.size());
    EXPECT_EQ(data, original);
}

TEST(ChaCha20, DifferentNoncesDiverge)
{
    const Key256 key = rfcKey();
    Nonce96 n1{}, n2{};
    n2[11] = 1;
    std::uint8_t a[64], b[64];
    ChaCha20::block(key, n1, 0, a);
    ChaCha20::block(key, n2, 0, b);
    EXPECT_NE(std::memcmp(a, b, 64), 0);
}

TEST(ChaCha20, DifferentCountersDiverge)
{
    const Key256 key = rfcKey();
    Nonce96 nonce{};
    std::uint8_t a[64], b[64];
    ChaCha20::block(key, nonce, 0, a);
    ChaCha20::block(key, nonce, 1, b);
    EXPECT_NE(std::memcmp(a, b, 64), 0);
}

TEST(ChaCha20, PartialBlockLengths)
{
    const Key256 key = rfcKey();
    Nonce96 nonce{};
    for (std::size_t len : {0UL, 1UL, 63UL, 64UL, 65UL, 128UL, 200UL}) {
        std::vector<std::uint8_t> data(len, 0xAB);
        const auto original = data;
        ChaCha20::xorStream(key, nonce, 5, data.data(), data.size());
        ChaCha20::xorStream(key, nonce, 5, data.data(), data.size());
        EXPECT_EQ(data, original) << "len=" << len;
    }
}

} // namespace
} // namespace laoram::crypto
