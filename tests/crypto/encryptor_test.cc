/**
 * @file
 * Unit tests for the slot encryptor (nonce/epoch management).
 */

#include <gtest/gtest.h>

#include <vector>

#include "crypto/encryptor.hh"

namespace laoram::crypto {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t base)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(base + i);
    return v;
}

TEST(Encryptor, RoundTrip)
{
    Encryptor enc(Encryptor::deriveKey(1), 16);
    auto data = pattern(48, 3);
    const auto original = data;
    enc.encryptSlot(5, data.data(), data.size());
    EXPECT_NE(data, original);
    enc.decryptSlot(5, data.data(), data.size());
    EXPECT_EQ(data, original);
}

TEST(Encryptor, DifferentSlotsDifferentCiphertext)
{
    Encryptor enc(Encryptor::deriveKey(1), 16);
    auto a = pattern(32, 0);
    auto b = pattern(32, 0);
    enc.encryptSlot(0, a.data(), a.size());
    enc.encryptSlot(1, b.data(), b.size());
    EXPECT_NE(a, b) << "identical plaintexts in different slots must "
                       "not share ciphertext";
}

TEST(Encryptor, RewriteChangesCiphertext)
{
    // Writing the same plaintext twice into the same slot must yield
    // different ciphertext (fresh epoch => fresh nonce), or rewrites
    // would leak "content unchanged".
    Encryptor enc(Encryptor::deriveKey(2), 4);
    auto first = pattern(32, 9);
    auto second = pattern(32, 9);
    enc.encryptSlot(2, first.data(), first.size());
    enc.encryptSlot(2, second.data(), second.size());
    EXPECT_NE(first, second);
    // Only the latest epoch decrypts correctly.
    enc.decryptSlot(2, second.data(), second.size());
    EXPECT_EQ(second, pattern(32, 9));
}

TEST(Encryptor, DisabledIsPassThrough)
{
    Encryptor enc = Encryptor::makeDisabled();
    EXPECT_FALSE(enc.enabled());
    auto data = pattern(16, 1);
    const auto original = data;
    enc.encryptSlot(0, data.data(), data.size());
    EXPECT_EQ(data, original);
    enc.decryptSlot(0, data.data(), data.size());
    EXPECT_EQ(data, original);
}

TEST(Encryptor, DeriveKeyDeterministic)
{
    EXPECT_EQ(Encryptor::deriveKey(77), Encryptor::deriveKey(77));
    EXPECT_NE(Encryptor::deriveKey(77), Encryptor::deriveKey(78));
}

TEST(Encryptor, KeySeparation)
{
    Encryptor e1(Encryptor::deriveKey(1), 4);
    Encryptor e2(Encryptor::deriveKey(2), 4);
    auto a = pattern(32, 5);
    auto b = pattern(32, 5);
    e1.encryptSlot(0, a.data(), a.size());
    e2.encryptSlot(0, b.data(), b.size());
    EXPECT_NE(a, b);
}

} // namespace
} // namespace laoram::crypto
