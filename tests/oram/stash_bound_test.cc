/**
 * @file
 * Statistical validation of PathORAM's stash-bound behaviour: the
 * PathORAM paper (Theorem 1) shows the stash exceeds R blocks with
 * probability that decays geometrically in R (for Z >= 4 it is
 * bounded by 14 * 0.6^R). We verify the measured post-access stash
 * occupancy distribution exhibits that fast tail decay, and that the
 * worst-case (permutation-like) load stays within the theorem's
 * regime.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "oram/path_oram.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace laoram::oram {
namespace {

TEST(StashBound, TailDecaysGeometrically)
{
    EngineConfig cfg;
    cfg.numBlocks = 4096;
    cfg.blockBytes = 64;
    cfg.seed = 5;
    cfg.stashHighWater = ~std::uint64_t{0}; // observe raw occupancy
    cfg.stashLowWater = 0;
    PathOram oram(cfg);

    // Preload the working set so occupancy is steady-state.
    for (BlockId id = 0; id < 4096; ++id)
        oram.touch(id);

    Rng rng(9);
    Histogram hist(0.0, 64.0, 64);
    constexpr int kAccesses = 20000;
    for (int i = 0; i < kAccesses; ++i) {
        oram.touch(rng.nextBounded(4096));
        hist.sample(static_cast<double>(oram.stashSize()));
    }

    // Z=4 PathORAM: overwhelming mass at tiny stash sizes, and a
    // tail far below the theorem's 14 * 0.6^R envelope.
    EXPECT_EQ(hist.overflow(), 0u) << "stash exceeded 64 blocks";
    const double q999 = hist.quantile(0.999);
    EXPECT_LT(q999, 30.0);
    // Envelope check at a few R values.
    std::uint64_t cum = 0;
    for (std::size_t r = hist.buckets(); r-- > 0;) {
        cum += hist.bucketCount(r);
        if (r >= 10) {
            const double p_exceed =
                static_cast<double>(cum) / kAccesses;
            const double envelope =
                14.0 * std::pow(0.6, static_cast<double>(r));
            EXPECT_LE(p_exceed, envelope + 0.01)
                << "tail too heavy at R=" << r;
        }
    }
}

TEST(StashBound, MeanOccupancyTiny)
{
    EngineConfig cfg;
    cfg.numBlocks = 2048;
    cfg.blockBytes = 64;
    cfg.seed = 6;
    PathOram oram(cfg);
    for (BlockId id = 0; id < 2048; ++id)
        oram.touch(id);

    Rng rng(10);
    Accumulator acc;
    for (int i = 0; i < 10000; ++i) {
        oram.touch(rng.nextBounded(2048));
        acc.sample(static_cast<double>(oram.stashSize()));
    }
    EXPECT_LT(acc.mean(), 8.0)
        << "Z=4 steady-state stash should average a few blocks";
}

} // namespace
} // namespace laoram::oram
