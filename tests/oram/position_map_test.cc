/**
 * @file
 * Position-map tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "oram/position_map.hh"

namespace laoram::oram {
namespace {

TEST(PositionMap, InitialLeavesInRange)
{
    Rng rng(1);
    PositionMap pm(1000, 64, rng);
    EXPECT_EQ(pm.size(), 1000u);
    for (BlockId id = 0; id < 1000; ++id)
        EXPECT_LT(pm.get(id), 64u);
}

TEST(PositionMap, InitialLeavesRoughlyUniform)
{
    Rng rng(2);
    constexpr std::uint64_t kLeaves = 16;
    PositionMap pm(16000, kLeaves, rng);
    std::vector<int> hist(kLeaves, 0);
    for (BlockId id = 0; id < 16000; ++id)
        ++hist[pm.get(id)];
    const double expected = 1000.0;
    double chi2 = 0;
    for (int c : hist)
        chi2 += (c - expected) * (c - expected) / expected;
    EXPECT_LT(chi2, 45.0); // df=15, very generous
}

TEST(PositionMap, SetGet)
{
    Rng rng(3);
    PositionMap pm(10, 8, rng);
    pm.set(3, 5);
    EXPECT_EQ(pm.get(3), 5u);
    pm.set(3, 0);
    EXPECT_EQ(pm.get(3), 0u);
}

TEST(PositionMap, ResidentBytes)
{
    Rng rng(4);
    PositionMap pm(100, 8, rng);
    EXPECT_EQ(pm.residentBytes(), 100 * sizeof(Leaf));
}

} // namespace
} // namespace laoram::oram
