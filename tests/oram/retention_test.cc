/**
 * @file
 * Prefetch-retention (stash pinning) tests: superblock engines keep
 * fetched group members client-side until their predicted accesses
 * arrive, then release them; capacity pressure overrides retention.
 */

#include <gtest/gtest.h>

#include "oram/pro_oram.hh"
#include "oram/stash.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

TEST(StashPinning, UnpinAllClearsEveryPin)
{
    Stash s;
    s.put(1, 0).pinned = true;
    s.put(2, 0).pinned = true;
    s.put(3, 0);
    s.unpinAll();
    for (const auto &[id, entry] : s)
        EXPECT_FALSE(entry.pinned);
}

StaticSuperblockConfig
cfg(std::uint64_t blocks, std::uint64_t sb)
{
    StaticSuperblockConfig c;
    c.base.numBlocks = blocks;
    c.base.blockBytes = 64;
    c.base.seed = 91;
    c.superblockSize = sb;
    return c;
}

TEST(Retention, GroupFetchPinsSiblings)
{
    StaticSuperblockOram oram(cfg(64, 4));
    oram.touch(0);
    // Blocks 1..3 were co-fetched and must be resident and pinned.
    for (BlockId m = 1; m < 4; ++m) {
        const StashEntry *e = oram.stashForAudit().find(m);
        ASSERT_NE(e, nullptr) << "sibling " << m << " not retained";
        EXPECT_TRUE(e->pinned);
    }
}

TEST(Retention, SiblingAccessesAreFree)
{
    StaticSuperblockOram oram(cfg(64, 4));
    oram.touch(0);
    const auto before = oram.meter().counters();
    oram.touch(1);
    oram.touch(2);
    oram.touch(3);
    const auto d = oram.meter().counters().since(before);
    EXPECT_EQ(d.pathReads, 0u);
    EXPECT_EQ(d.stashHits, 3u);
    EXPECT_EQ(d.logicalAccesses, 3u);
    // All pins released after their accesses arrived.
    for (BlockId m = 0; m < 4; ++m) {
        if (const StashEntry *e = oram.stashForAudit().find(m)) {
            EXPECT_FALSE(e->pinned) << "block " << m;
        }
    }
}

TEST(Retention, FourAccessesOnePathRead)
{
    // The PrORAM promise: n accesses to a formed superblock need n/S
    // path reads.
    StaticSuperblockOram oram(cfg(64, 4));
    const auto before = oram.meter().counters();
    for (BlockId m = 0; m < 4; ++m)
        oram.touch(m);
    const auto d = oram.meter().counters().since(before);
    EXPECT_EQ(d.pathReads, 1u);
    EXPECT_EQ(d.logicalAccesses, 4u);
}

TEST(Retention, CapacityPressureDropsPins)
{
    // Tiny high-water mark: fetching groups without consuming them
    // must trigger eviction, which unpins and drains.
    StaticSuperblockConfig c = cfg(512, 8);
    c.base.stashHighWater = 12;
    c.base.stashLowWater = 4;
    StaticSuperblockOram oram(c);
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        oram.touch(rng.nextBounded(512));
    // The stash cannot stay above the drain target + one batch worth
    // of pins.
    EXPECT_LT(oram.stashSize(), 12u + 8u);
}

TEST(Retention, ProOramSplitReleasesPins)
{
    ProOramConfig pc;
    pc.base.numBlocks = 256;
    pc.base.blockBytes = 64;
    pc.base.seed = 17;
    pc.groupSize = 4;
    ProOram oram(pc);

    // Merge group 0, leaving siblings pinned after one access.
    for (int round = 0; round < 8; ++round)
        for (BlockId m = 0; m < 4; ++m)
            oram.touch(m);
    ASSERT_GE(oram.mergedGroups(), 1u);

    // Decay the counter until split; pins must be gone afterwards.
    Rng rng(5);
    for (int i = 0; i < 12 && oram.totalSplits() == 0; ++i) {
        oram.touch(0);
        for (int j = 0; j < 300; ++j)
            oram.touch(128 + rng.nextBounded(64));
    }
    ASSERT_GE(oram.totalSplits(), 1u);
    for (BlockId m = 0; m < 4; ++m) {
        if (const StashEntry *e = oram.stashForAudit().find(m)) {
            EXPECT_FALSE(e->pinned);
        }
    }
}

TEST(Retention, PinnedBlocksStillReadCorrectly)
{
    StaticSuperblockConfig c = cfg(64, 4);
    c.base.payloadBytes = 8;
    StaticSuperblockOram oram(c);
    std::vector<std::uint8_t> data(8, 0x5A);
    oram.writeBlock(0, data); // fetches + pins 1..3
    std::vector<std::uint8_t> out;
    oram.readBlock(1, out); // pinned sibling, zero-initialised
    EXPECT_EQ(out, std::vector<std::uint8_t>(8, 0));
    oram.readBlock(0, out);
    EXPECT_EQ(out, data);
}

} // namespace
} // namespace laoram::oram
