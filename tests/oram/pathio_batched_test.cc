/**
 * @file
 * Regression tests for the union-batched path I/O — the machinery
 * that makes multi-path superblock accesses correct. The scenario
 * that motivated it: two fetched paths share prefix nodes, and a
 * naive sequential write-back of path 2 then path 1 overwrites the
 * shared nodes populated by path 2's write, losing blocks.
 */

#include <gtest/gtest.h>

#include <map>

#include "oram/evictor.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

struct BatchedFixture : public ::testing::Test
{
    BatchedFixture()
        : geom(64, 8, BucketProfile::uniform(2)), // tight buckets
          storage(geom, 8, false),
          rng(13),
          posmap(64, geom.numLeaves(), rng),
          io(geom, storage, stash)
    {
    }

    std::vector<std::uint8_t>
    payloadFor(BlockId id)
    {
        return std::vector<std::uint8_t>(8,
                                         static_cast<std::uint8_t>(id));
    }

    /** Stage a block in the stash mapped to @p leaf. */
    void
    stage(BlockId id, Leaf leaf)
    {
        posmap.set(id, leaf);
        stash.put(id, leaf, payloadFor(id));
    }

    TreeGeometry geom;
    ServerStorage storage;
    Rng rng;
    PositionMap posmap;
    Stash stash;
    PathIo io;
};

TEST_F(BatchedFixture, UnionReadVisitsSharedNodesOnce)
{
    std::uint64_t slot_reads = 0;
    storage.setAccessSink([&](std::uint64_t, bool write) {
        if (!write)
            ++slot_reads;
    });
    // Sibling leaves share all levels but the last.
    const std::vector<Leaf> leaves{0, 1};
    io.readPathsBatched(leaves);
    const std::uint64_t z = 2;
    // Union: (L+1) + 1 nodes (only the leaf differs).
    const std::uint64_t expect =
        (geom.numLevels() + 1) * z;
    EXPECT_EQ(slot_reads, expect);
}

TEST_F(BatchedFixture, UnionReadOfDisjointPathsVisitsBoth)
{
    std::uint64_t slot_reads = 0;
    storage.setAccessSink([&](std::uint64_t, bool write) {
        if (!write)
            ++slot_reads;
    });
    // Leaves in opposite halves share only the root.
    const std::vector<Leaf> leaves{0, geom.numLeaves() - 1};
    io.readPathsBatched(leaves);
    const std::uint64_t z = 2;
    const std::uint64_t expect = (2 * geom.numLevels() - 1) * z;
    EXPECT_EQ(slot_reads, expect);
}

TEST_F(BatchedFixture, OverlappingWriteBackLosesNothing)
{
    // The motivating bug: blocks eligible only at shared prefix nodes
    // of two written paths must survive a batched write-back. Sibling
    // paths 0 and 1 share every node except the leaves; blocks homed
    // in the opposite tree half are eligible ONLY at the shared root.
    const Leaf left = 0;
    const Leaf right = 1;
    const Leaf elsewhere = geom.numLeaves() / 2;
    stage(1, elsewhere);
    stage(2, elsewhere ^ 1);

    io.writePathsBatched({left, right});

    // Root Z=2: both blocks must be in the tree now (not lost, not
    // duplicated) — audit verifies global consistency.
    EXPECT_EQ(auditTree(geom, storage, stash, posmap), "");
    std::uint64_t in_tree = 0;
    StoredBlock b;
    for (std::uint64_t s = 0; s < geom.bucketSize(0); ++s) {
        storage.readSlot(geom.nodeSlotBase(0) + s, b);
        in_tree += !b.isDummy();
    }
    EXPECT_EQ(in_tree + stash.size(), 2u);
    EXPECT_EQ(in_tree, 2u) << "root had capacity for both";
}

TEST_F(BatchedFixture, RandomBatchesPreserveEveryBlock)
{
    // Differential test: run random batched read/write rounds and
    // check no block is ever lost or duplicated.
    std::map<BlockId, bool> live;
    for (int round = 0; round < 120; ++round) {
        // Stage up to 4 fresh blocks on random leaves.
        for (int i = 0; i < 4; ++i) {
            const BlockId id = rng.nextBounded(64);
            if (live.count(id))
                continue;
            const Leaf leaf = rng.nextBounded(geom.numLeaves());
            if (stash.contains(id))
                continue;
            // Only stage blocks not currently in the tree.
            bool in_tree = false;
            StoredBlock b;
            for (NodeIndex n = 0; n < geom.numNodes() && !in_tree;
                 ++n) {
                const auto base = geom.nodeSlotBase(n);
                const auto z = geom.bucketSize(geom.nodeLevel(n));
                for (std::uint64_t s = 0; s < z; ++s) {
                    storage.readSlot(base + s, b);
                    if (!b.isDummy() && b.id == id)
                        in_tree = true;
                }
            }
            if (in_tree)
                continue;
            stage(id, leaf);
            live[id] = true;
        }
        // Random batch of 1-3 paths: read then write.
        std::vector<Leaf> leaves;
        const int k = 1 + static_cast<int>(rng.nextBounded(3));
        for (int i = 0; i < k; ++i)
            leaves.push_back(rng.nextBounded(geom.numLeaves()));
        std::sort(leaves.begin(), leaves.end());
        leaves.erase(std::unique(leaves.begin(), leaves.end()),
                     leaves.end());
        io.readPathsBatched(leaves);
        io.writePathsBatched(leaves);

        ASSERT_EQ(auditTree(geom, storage, stash, posmap), "")
            << "round " << round;
    }
    // Every staged block is accounted for: in tree or stash.
    std::map<BlockId, int> found;
    StoredBlock b;
    for (NodeIndex n = 0; n < geom.numNodes(); ++n) {
        const auto base = geom.nodeSlotBase(n);
        const auto z = geom.bucketSize(geom.nodeLevel(n));
        for (std::uint64_t s = 0; s < z; ++s) {
            storage.readSlot(base + s, b);
            if (!b.isDummy())
                ++found[b.id];
        }
    }
    for (const auto &[id, entry] : stash)
        ++found[id];
    for (const auto &[id, alive] : live)
        EXPECT_EQ(found[id], 1) << "block " << id;
}

TEST_F(BatchedFixture, SingleLeafBatchedEqualsPlainWrite)
{
    // writePathsBatched({leaf}) must behave exactly like
    // writePath(leaf) — same placements, same slot count.
    stage(5, 3);
    stage(9, 3);
    const std::uint64_t slots = io.writePathsBatched({Leaf{3}});
    EXPECT_EQ(slots, geom.pathSlots());
    EXPECT_TRUE(stash.empty());
    EXPECT_EQ(auditTree(geom, storage, stash, posmap), "");
}

TEST_F(BatchedFixture, PinnedEntriesSurviveBatchedWrite)
{
    stage(7, 4);
    stash.find(7)->pinned = true;
    io.writePathsBatched({Leaf{4}});
    EXPECT_TRUE(stash.contains(7)) << "pinned block must be retained";
    stash.find(7)->pinned = false;
    io.writePathsBatched({Leaf{4}});
    EXPECT_FALSE(stash.contains(7));
}

TEST_F(BatchedFixture, PinnedEntriesSurvivePlainWrite)
{
    stage(8, 6);
    stash.find(8)->pinned = true;
    io.writePath(6);
    EXPECT_TRUE(stash.contains(8));
}

TEST_F(BatchedFixture, WriteBackPlacesAtDeepestUnionNode)
{
    // A block whose leaf IS one of the written paths must land in
    // that leaf's bucket, not at the shared root.
    const Leaf target = 5;
    stage(11, target);
    io.writePathsBatched({target, target ^ 1});

    const NodeIndex leaf_node =
        geom.pathNode(target, geom.leafLevel());
    StoredBlock b;
    bool at_leaf = false;
    const auto base = geom.nodeSlotBase(leaf_node);
    for (std::uint64_t s = 0;
         s < geom.bucketSize(geom.leafLevel()); ++s) {
        storage.readSlot(base + s, b);
        at_leaf |= (!b.isDummy() && b.id == 11);
    }
    EXPECT_TRUE(at_leaf);
}

TEST(SlotNode, InvertsNodeSlotBase)
{
    TreeGeometry geom(256, 16, BucketProfile::linear(3, 7));
    for (NodeIndex n = 0; n < geom.numNodes(); ++n) {
        const auto base = geom.nodeSlotBase(n);
        const auto z = geom.bucketSize(geom.nodeLevel(n));
        for (std::uint64_t s = base; s < base + z; ++s)
            ASSERT_EQ(geom.slotNode(s), n) << "slot " << s;
    }
}

} // namespace
} // namespace laoram::oram
