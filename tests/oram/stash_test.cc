/**
 * @file
 * Stash container tests.
 */

#include <gtest/gtest.h>

#include "oram/stash.hh"

namespace laoram::oram {
namespace {

TEST(Stash, EmptyOnConstruction)
{
    Stash s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.find(1), nullptr);
    EXPECT_FALSE(s.contains(1));
}

TEST(Stash, PutFindErase)
{
    Stash s;
    s.put(7, 3, {1, 2, 3});
    ASSERT_TRUE(s.contains(7));
    StashEntry *e = s.find(7);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->leaf, 3u);
    EXPECT_EQ(e->payload, (std::vector<std::uint8_t>{1, 2, 3}));
    s.erase(7);
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.empty());
}

TEST(Stash, PutOverwrites)
{
    Stash s;
    s.put(1, 2, {9});
    s.put(1, 5, {8, 8});
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.find(1)->leaf, 5u);
    EXPECT_EQ(s.find(1)->payload.size(), 2u);
}

TEST(Stash, PayloadLessPutKeepsExistingPayload)
{
    Stash s;
    s.put(1, 2, {7, 7});
    s.put(1, 9); // leaf-only update
    EXPECT_EQ(s.find(1)->leaf, 9u);
    EXPECT_EQ(s.find(1)->payload, (std::vector<std::uint8_t>{7, 7}));
}

TEST(Stash, IterationCoversAll)
{
    Stash s;
    for (BlockId id = 0; id < 10; ++id)
        s.put(id, id * 2);
    std::uint64_t seen = 0;
    for (const auto &[id, entry] : s) {
        EXPECT_EQ(entry.leaf, id * 2);
        ++seen;
    }
    EXPECT_EQ(seen, 10u);
}

TEST(Stash, MutableLeafViaIteration)
{
    Stash s;
    s.put(1, 0);
    for (auto &[id, entry] : s)
        entry.leaf = 42;
    EXPECT_EQ(s.find(1)->leaf, 42u);
}

TEST(Stash, ResidentBytesScalesWithSize)
{
    Stash s;
    EXPECT_EQ(s.residentBytes(100), 0u);
    s.put(1, 0);
    s.put(2, 0);
    EXPECT_EQ(s.residentBytes(100), 2 * (8 + 8 + 100));
}

} // namespace
} // namespace laoram::oram
