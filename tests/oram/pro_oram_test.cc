/**
 * @file
 * PrORAM baseline tests: static superblock co-location, dynamic
 * counter merge/split behaviour, and the paper's degeneration claim.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "oram/evictor.hh"
#include "oram/path_oram.hh"
#include "oram/pro_oram.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

StaticSuperblockConfig
staticConfig(std::uint64_t blocks, std::uint64_t sb,
             std::uint64_t payload = 8)
{
    StaticSuperblockConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = payload;
    cfg.base.seed = 31;
    cfg.superblockSize = sb;
    return cfg;
}

ProOramConfig
dynConfig(std::uint64_t blocks, std::uint64_t group)
{
    ProOramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 0;
    cfg.base.seed = 37;
    cfg.groupSize = group;
    return cfg;
}

TEST(StaticSuperblock, GroupsStartColocated)
{
    StaticSuperblockOram oram(staticConfig(64, 4));
    const auto &pm = oram.posmapForAudit();
    for (BlockId base = 0; base < 64; base += 4) {
        const Leaf shared = pm.get(base);
        for (BlockId m = base; m < base + 4; ++m)
            EXPECT_EQ(pm.get(m), shared) << "group of " << base;
    }
}

TEST(StaticSuperblock, GroupsStayColocatedUnderChurn)
{
    StaticSuperblockOram oram(staticConfig(64, 4));
    Rng rng(1);
    for (int i = 0; i < 400; ++i)
        oram.touch(rng.nextBounded(64));
    const auto &pm = oram.posmapForAudit();
    for (BlockId base = 0; base < 64; base += 4) {
        const Leaf shared = pm.get(base);
        for (BlockId m = base; m < base + 4; ++m)
            EXPECT_EQ(pm.get(m), shared);
    }
    EXPECT_EQ(auditTree(oram.geometry(), oram.storageForAudit(),
                        oram.stashForAudit(), oram.posmapForAudit()),
              "");
}

TEST(StaticSuperblock, ReadYourWrites)
{
    StaticSuperblockOram oram(staticConfig(64, 4, 8));
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        const BlockId id = rng.nextBounded(64);
        std::vector<std::uint8_t> data(8,
                                       static_cast<std::uint8_t>(i));
        oram.writeBlock(id, data);
        ref[id] = data;
    }
    for (const auto &[id, data] : ref) {
        std::vector<std::uint8_t> out;
        oram.readBlock(id, out);
        EXPECT_EQ(out, data);
    }
}

TEST(StaticSuperblock, NeighbourAccessServedFromPrefetch)
{
    // Touching block 0 fetches its whole group (0..3) onto the
    // client; a subsequent access to block 1 is a superblock prefetch
    // hit and generates no server traffic.
    StaticSuperblockOram oram(staticConfig(64, 4, 0));
    oram.touch(0);
    const auto before = oram.meter().counters();
    oram.touch(1);
    const auto d = oram.meter().counters().since(before);
    EXPECT_EQ(d.pathReads, 0u);
    EXPECT_EQ(d.stashHits, 1u);
    EXPECT_EQ(d.logicalAccesses, 1u);
}

TEST(StaticSuperblock, SizeOneIsPathOram)
{
    // superblockSize 1 must behave exactly like PathORAM in traffic.
    StaticSuperblockOram s(staticConfig(128, 1, 0));
    EngineConfig pcfg = staticConfig(128, 1, 0).base;
    PathOram p(pcfg);
    std::vector<BlockId> trace;
    Rng rng(3);
    for (int i = 0; i < 300; ++i)
        trace.push_back(rng.nextBounded(128));
    s.runTrace(trace);
    p.runTrace(trace);
    EXPECT_EQ(s.meter().counters().pathReads,
              p.meter().counters().pathReads);
    EXPECT_EQ(s.meter().counters().bytesRead,
              p.meter().counters().bytesRead);
}

TEST(StaticSuperblock, NameEncodesSize)
{
    StaticSuperblockOram oram(staticConfig(16, 4));
    EXPECT_EQ(oram.name(), "PrORAM-static/S4");
}

TEST(ProOram, RandomStreamAlmostNeverMerges)
{
    // Paper Fig. 2 discussion: embedding streams have too little
    // history locality for counter-based superblocks.
    ProOram oram(dynConfig(16384, 4));
    Rng rng(4);
    for (int i = 0; i < 4000; ++i)
        oram.touch(rng.nextBounded(16384));
    EXPECT_LE(oram.totalMerges(), 2u);
}

TEST(ProOram, CoAccessedGroupMerges)
{
    // Repeatedly sweep one group: its locality counter must cross the
    // merge threshold quickly.
    ProOram oram(dynConfig(1024, 4));
    for (int round = 0; round < 8; ++round)
        for (BlockId m = 0; m < 4; ++m)
            oram.touch(m);
    EXPECT_GE(oram.totalMerges(), 1u);
    EXPECT_GE(oram.mergedGroups(), 1u);
}

TEST(ProOram, MergedGroupSharesLeaf)
{
    ProOram oram(dynConfig(1024, 4));
    for (int round = 0; round < 8; ++round)
        for (BlockId m = 0; m < 4; ++m)
            oram.touch(m);
    ASSERT_GE(oram.mergedGroups(), 1u);
    const auto &pm = oram.posmapForAudit();
    const Leaf shared = pm.get(0);
    for (BlockId m = 1; m < 4; ++m)
        EXPECT_EQ(pm.get(m), shared);
}

TEST(ProOram, IdleGroupSplitsAgain)
{
    ProOram oram(dynConfig(1024, 4));
    // Merge group 0.
    for (int round = 0; round < 8; ++round)
        for (BlockId m = 0; m < 4; ++m)
            oram.touch(m);
    ASSERT_GE(oram.mergedGroups(), 1u);
    // Then hammer distant blocks so group 0 decays on its next touches.
    Rng rng(5);
    for (int i = 0; i < 600; ++i)
        oram.touch(512 + rng.nextBounded(256));
    // Touch group 0 members sporadically (outside the window). The
    // counter saturates at counterCap (8) during the merge phase and
    // decays by one per out-of-window touch, so 12 touches are enough
    // to cross the split threshold (0).
    for (int i = 0; i < 12; ++i) {
        oram.touch(0);
        for (int j = 0; j < 300; ++j)
            oram.touch(512 + rng.nextBounded(256));
    }
    EXPECT_GE(oram.totalSplits(), 1u);
}

TEST(ProOram, DegeneratesToPathOramOnRandomStream)
{
    // The paper's justification for look-ahead: history-based PrORAM
    // collapses to PathORAM on high-entropy traces (§VII-B).
    ProOram pro(dynConfig(16384, 4));
    EngineConfig pcfg = dynConfig(16384, 4).base;
    PathOram path(pcfg);
    std::vector<BlockId> trace;
    Rng rng(6);
    for (int i = 0; i < 3000; ++i)
        trace.push_back(rng.nextBounded(16384));
    pro.runTrace(trace);
    path.runTrace(trace);
    const double pro_bytes =
        static_cast<double>(pro.meter().counters().totalBytes());
    const double path_bytes =
        static_cast<double>(path.meter().counters().totalBytes());
    EXPECT_NEAR(pro_bytes / path_bytes, 1.0, 0.02);
}

TEST(ProOram, AuditAfterMixedWorkload)
{
    ProOram oram(dynConfig(512, 4));
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        if (i % 5 == 0)
            for (BlockId m = 8; m < 12; ++m)
                oram.touch(m);
        else
            oram.touch(rng.nextBounded(512));
    }
    EXPECT_EQ(auditTree(oram.geometry(), oram.storageForAudit(),
                        oram.stashForAudit(), oram.posmapForAudit()),
              "");
}

TEST(ProOram, RejectsBadThresholds)
{
    ProOramConfig cfg = dynConfig(64, 4);
    cfg.mergeThreshold = 1;
    cfg.splitThreshold = 2;
    EXPECT_DEATH({ ProOram oram(cfg); (void)oram; }, "threshold");
}

} // namespace
} // namespace laoram::oram
