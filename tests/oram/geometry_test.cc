/**
 * @file
 * Tree-geometry tests: indexing, fat-tree bucket profiles, and the
 * memory accounting behind paper Table I.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "oram/tree_geometry.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

TEST(BucketProfile, Factories)
{
    EXPECT_TRUE(BucketProfile::uniform(4).isUniform());
    EXPECT_FALSE(BucketProfile::fat(4).isUniform());
    EXPECT_EQ(BucketProfile::fat(5).rootZ, 10u);
    const auto lin = BucketProfile::linear(5, 9);
    EXPECT_EQ(lin.leafZ, 5u);
    EXPECT_EQ(lin.rootZ, 9u);
}

TEST(TreeGeometry, BasicShape)
{
    TreeGeometry g(1024, 128, BucketProfile::uniform(4));
    EXPECT_EQ(g.leafLevel(), 10u);
    EXPECT_EQ(g.numLeaves(), 1024u);
    EXPECT_EQ(g.numNodes(), 2047u);
    EXPECT_EQ(g.totalSlots(), 2047u * 4);
    EXPECT_EQ(g.pathSlots(), 11u * 4);
}

TEST(TreeGeometry, NonPow2RoundsUp)
{
    TreeGeometry g(1000, 64, BucketProfile::uniform(4));
    EXPECT_EQ(g.numLeaves(), 1024u);
    EXPECT_EQ(g.numBlocks(), 1000u);
}

TEST(TreeGeometry, TinyTrees)
{
    TreeGeometry g1(1, 16, BucketProfile::uniform(2));
    EXPECT_EQ(g1.leafLevel(), 1u);
    EXPECT_EQ(g1.numLeaves(), 2u);
    TreeGeometry g2(2, 16, BucketProfile::uniform(2));
    EXPECT_EQ(g2.numLeaves(), 2u);
    TreeGeometry g3(3, 16, BucketProfile::uniform(2));
    EXPECT_EQ(g3.numLeaves(), 4u);
}

TEST(TreeGeometry, PaperFatExample)
{
    // Paper §V: leaf bucket 5, six levels (leaf level 5) -> bucket
    // sizes 10, 9, 8, 7, 6, 5 from root to leaf.
    TreeGeometry g(32, 16, BucketProfile::fat(5));
    ASSERT_EQ(g.leafLevel(), 5u);
    EXPECT_EQ(g.bucketSize(0), 10u);
    EXPECT_EQ(g.bucketSize(1), 9u);
    EXPECT_EQ(g.bucketSize(2), 8u);
    EXPECT_EQ(g.bucketSize(3), 7u);
    EXPECT_EQ(g.bucketSize(4), 6u);
    EXPECT_EQ(g.bucketSize(5), 5u);
}

TEST(TreeGeometry, FatMonotoneNonIncreasing)
{
    TreeGeometry g(1 << 16, 16, BucketProfile::fat(4));
    for (unsigned l = 1; l <= g.leafLevel(); ++l)
        EXPECT_LE(g.bucketSize(l), g.bucketSize(l - 1));
    EXPECT_EQ(g.bucketSize(0), 8u);
    EXPECT_EQ(g.bucketSize(g.leafLevel()), 4u);
}

TEST(TreeGeometry, PathNodeMatchesParentWalk)
{
    TreeGeometry g(1 << 8, 16, BucketProfile::uniform(4));
    const unsigned L = g.leafLevel();
    for (Leaf leaf : {Leaf{0}, Leaf{1}, Leaf{100}, Leaf{255}}) {
        // Walk up from the leaf node using heap parent arithmetic and
        // compare against pathNode at every level.
        NodeIndex node = (NodeIndex{1} << L) - 1 + leaf;
        for (unsigned level = L + 1; level-- > 0;) {
            EXPECT_EQ(g.pathNode(leaf, level), node)
                << "leaf " << leaf << " level " << level;
            if (node == 0)
                break;
            node = (node - 1) / 2;
        }
    }
}

TEST(TreeGeometry, RootIsSharedByAllPaths)
{
    TreeGeometry g(1 << 10, 16, BucketProfile::uniform(4));
    for (Leaf leaf = 0; leaf < g.numLeaves(); leaf += 37)
        EXPECT_EQ(g.pathNode(leaf, 0), 0u);
}

TEST(TreeGeometry, NodeLevelRoundTrips)
{
    TreeGeometry g(1 << 6, 16, BucketProfile::uniform(4));
    EXPECT_EQ(g.nodeLevel(0), 0u);
    EXPECT_EQ(g.nodeLevel(1), 1u);
    EXPECT_EQ(g.nodeLevel(2), 1u);
    EXPECT_EQ(g.nodeLevel(3), 2u);
    EXPECT_EQ(g.nodeLevel(g.numNodes() - 1), g.leafLevel());
}

TEST(TreeGeometry, SlotRangesPartitionStorage)
{
    // Every slot must belong to exactly one node.
    TreeGeometry g(1 << 5, 16, BucketProfile::fat(3));
    std::set<std::uint64_t> seen;
    for (NodeIndex n = 0; n < g.numNodes(); ++n) {
        const std::uint64_t base = g.nodeSlotBase(n);
        const std::uint64_t z = g.bucketSize(g.nodeLevel(n));
        for (std::uint64_t s = base; s < base + z; ++s)
            EXPECT_TRUE(seen.insert(s).second)
                << "slot " << s << " double-owned";
    }
    EXPECT_EQ(seen.size(), g.totalSlots());
    EXPECT_EQ(*seen.rbegin(), g.totalSlots() - 1);
}

TEST(TreeGeometry, CommonLevelProperties)
{
    TreeGeometry g(1 << 8, 16, BucketProfile::uniform(4));
    const unsigned L = g.leafLevel();
    EXPECT_EQ(g.commonLevel(5, 5), L);
    // Leaves differing only in the lowest bit share all but the last
    // level.
    EXPECT_EQ(g.commonLevel(4, 5), L - 1);
    // Leaves in different halves share only the root.
    EXPECT_EQ(g.commonLevel(0, g.numLeaves() - 1), 0u);
    // Symmetry.
    for (Leaf a = 0; a < 16; ++a)
        for (Leaf b = 0; b < 16; ++b)
            EXPECT_EQ(g.commonLevel(a, b), g.commonLevel(b, a));
}

TEST(TreeGeometry, CommonLevelMatchesSharedPathPrefix)
{
    TreeGeometry g(1 << 6, 16, BucketProfile::uniform(4));
    for (Leaf a = 0; a < g.numLeaves(); a += 5) {
        for (Leaf b = 0; b < g.numLeaves(); b += 7) {
            const unsigned cl = g.commonLevel(a, b);
            for (unsigned l = 0; l <= cl; ++l)
                EXPECT_EQ(g.pathNode(a, l), g.pathNode(b, l));
            if (cl < g.leafLevel()) {
                EXPECT_NE(g.pathNode(a, cl + 1), g.pathNode(b, cl + 1));
            }
        }
    }
}

TEST(TreeGeometry, TableOneInsecureSizes)
{
    // Table I row "8M": 8M entries x 128 B = 1 GB.
    EXPECT_EQ(TreeGeometry::insecureBytes(8ULL << 20, 128),
              1ULL << 30);
    // "XNLI": 262144 x 4 KiB = 1 GiB.
    EXPECT_EQ(TreeGeometry::insecureBytes(262144, 4096), 1ULL << 30);
}

TEST(TreeGeometry, TableOnePathOramBlowup)
{
    // Table I: PathORAM (Z=4, one leaf per block) stores 8x the
    // insecure bytes (4 slots x ~2N nodes).
    TreeGeometry g(8ULL << 20, 128, BucketProfile::uniform(4));
    const double ratio = static_cast<double>(g.serverBytes())
        / static_cast<double>(
              TreeGeometry::insecureBytes(8ULL << 20, 128));
    EXPECT_NEAR(ratio, 8.0, 0.01);
}

TEST(TreeGeometry, MemoryNeutralFatSmallerThanUniform6)
{
    // Paper §VIII-C: fat 9->5 uses ~16.6% less memory than uniform 6.
    TreeGeometry fat(1 << 20, 128, BucketProfile::linear(5, 9));
    TreeGeometry uni(1 << 20, 128, BucketProfile::uniform(6));
    EXPECT_LT(fat.serverBytes(), uni.serverBytes());
    const double saving = 1.0
        - static_cast<double>(fat.serverBytes())
            / static_cast<double>(uni.serverBytes());
    // Linear decay over many levels: savings approach 1 - (5 + 2/L)/6;
    // accept a band around the paper's 16.6%.
    EXPECT_GT(saving, 0.10);
    EXPECT_LT(saving, 0.20);
}

TEST(TreeGeometry, FatCostsMoreThanUniformSameLeaf)
{
    TreeGeometry fat(1 << 16, 128, BucketProfile::fat(4));
    TreeGeometry uni(1 << 16, 128, BucketProfile::uniform(4));
    EXPECT_GT(fat.serverBytes(), uni.serverBytes());
    EXPECT_GT(fat.pathSlots(), uni.pathSlots());
}

TEST(TreeGeometry, CommonLevelDistributionMatchesPaperObservation)
{
    // Paper §V "key observation": for two independent uniform leaves,
    // P(deepest shared level == l) = 2^-(l+1) (root 0.5, level 1
    // 0.25, ...). This is the distribution that motivates widening
    // buckets near the root.
    TreeGeometry g(1 << 10, 16, BucketProfile::uniform(4));
    Rng rng(1234);
    constexpr int kSamples = 200000;
    std::vector<int> hist(g.numLevels(), 0);
    for (int i = 0; i < kSamples; ++i) {
        const Leaf a = rng.nextBounded(g.numLeaves());
        const Leaf b = rng.nextBounded(g.numLeaves());
        ++hist[g.commonLevel(a, b)];
    }
    for (unsigned l = 0; l < 5; ++l) {
        const double expect = std::pow(0.5, l + 1);
        const double got =
            static_cast<double>(hist[l]) / kSamples;
        EXPECT_NEAR(got, expect, 0.01) << "level " << l;
    }
}

/** Geometry invariants across a sweep of sizes and profiles. */
struct GeomCase
{
    std::uint64_t blocks;
    std::uint64_t leafZ;
    std::uint64_t rootZ;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase>
{
};

TEST_P(GeometrySweep, SlotTotalsConsistent)
{
    const auto p = GetParam();
    TreeGeometry g(p.blocks, 64,
                   BucketProfile::linear(p.leafZ, p.rootZ));
    // Sum of per-level slot counts equals totalSlots.
    std::uint64_t total = 0, per_path = 0;
    for (unsigned l = 0; l <= g.leafLevel(); ++l) {
        total += (std::uint64_t{1} << l) * g.bucketSize(l);
        per_path += g.bucketSize(l);
    }
    EXPECT_EQ(total, g.totalSlots());
    EXPECT_EQ(per_path, g.pathSlots());
    EXPECT_EQ(g.serverBytes(), g.totalSlots() * 64);
    EXPECT_EQ(g.bucketSize(0), p.rootZ);
    EXPECT_EQ(g.bucketSize(g.leafLevel()), p.leafZ);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(GeomCase{16, 4, 4}, GeomCase{17, 4, 4},
                      GeomCase{1024, 4, 8}, GeomCase{4096, 5, 9},
                      GeomCase{100000, 6, 6}, GeomCase{1 << 18, 4, 8},
                      GeomCase{3, 1, 2}, GeomCase{2, 2, 2}));

} // namespace
} // namespace laoram::oram
