/**
 * @file
 * Recursive position-map tests: chain construction, oblivious
 * lookup-and-update correctness against a shadow map, traffic
 * accounting, and the RecursivePathOram engine.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/traffic_meter.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_posmap.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

RecursiveConfig
rcfg(std::uint64_t packing = 4, std::uint64_t threshold = 16)
{
    RecursiveConfig c;
    c.packing = packing;
    c.directThreshold = threshold;
    c.seed = 11;
    return c;
}

TEST(RecursivePosmap, FlatWhenSmall)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    RecursivePositionMap rpm(10, 64, rcfg(4, 1024), meter);
    EXPECT_EQ(rpm.oramLevels(), 0u);
    EXPECT_EQ(rpm.serverBytes(), 0u);
    // Behaves exactly like a flat map.
    const Leaf old = rpm.getAndSet(3, 7);
    EXPECT_LT(old, 64u);
    EXPECT_EQ(rpm.peek(3), 7u);
    EXPECT_EQ(meter.counters().pathReads, 0u);
}

TEST(RecursivePosmap, ChainDepthMatchesPacking)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    // 4096 blocks, chi=4, threshold 16:
    // level sizes 1024 -> 256 -> 64 -> 16 (fits) => 4 ORAM levels.
    RecursivePositionMap rpm(4096, 4096, rcfg(4, 16), meter);
    EXPECT_EQ(rpm.oramLevels(), 4u);
    EXPECT_GT(rpm.serverBytes(), 0u);
}

TEST(RecursivePosmap, InitialPositionsInRange)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    RecursivePositionMap rpm(512, 512, rcfg(4, 16), meter);
    for (BlockId id = 0; id < 512; id += 7)
        EXPECT_LT(rpm.peek(id), 512u);
}

TEST(RecursivePosmap, GetAndSetMatchesShadowMap)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    RecursivePositionMap rpm(512, 512, rcfg(4, 16), meter);

    // Mirror every update in a shadow map; lookups must agree.
    std::map<BlockId, Leaf> shadow;
    Rng rng(3);
    for (int step = 0; step < 600; ++step) {
        const BlockId id = rng.nextBounded(512);
        const Leaf next = rng.nextBounded(512);
        const Leaf old = rpm.getAndSet(id, next);
        auto it = shadow.find(id);
        if (it != shadow.end()) {
            EXPECT_EQ(old, it->second) << "id " << id << " step "
                                       << step;
        }
        shadow[id] = next;
    }
    for (const auto &[id, leaf] : shadow)
        EXPECT_EQ(rpm.peek(id), leaf);
}

TEST(RecursivePosmap, ChargesOnePathPerLevel)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    RecursivePositionMap rpm(4096, 4096, rcfg(4, 16), meter);
    const auto before = meter.counters();
    rpm.getAndSet(123, 45);
    const auto d = meter.counters().since(before);
    EXPECT_EQ(d.pathReads, rpm.oramLevels());
    EXPECT_EQ(d.pathWrites, rpm.oramLevels());
}

TEST(RecursivePosmap, ClientBytesFarBelowFlatMap)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    RecursivePositionMap rpm(1 << 16, 1 << 16, rcfg(16, 256), meter);
    const std::uint64_t flat = (1 << 16) * sizeof(Leaf);
    EXPECT_LT(rpm.clientBytes(), flat / 16);
}

TEST(RecursivePosmap, RemapsAreUniform)
{
    mem::TrafficMeter meter{mem::CostModel{}};
    constexpr std::uint64_t kLeaves = 16;
    RecursivePositionMap rpm(256, kLeaves, rcfg(4, 16), meter);
    Rng rng(5);
    std::vector<std::uint64_t> hist(kLeaves, 0);
    for (int i = 0; i < 8000; ++i) {
        const Leaf next = rng.nextBounded(kLeaves);
        rpm.getAndSet(rng.nextBounded(256), next);
        ++hist[next];
    }
    const double expected = 8000.0 / kLeaves;
    double chi2 = 0;
    for (auto c : hist) {
        chi2 += (static_cast<double>(c) - expected)
            * (static_cast<double>(c) - expected) / expected;
    }
    EXPECT_LT(chi2, 45.0); // df=15
}

TEST(RecursivePathOram, ReadYourWrites)
{
    EngineConfig cfg;
    cfg.numBlocks = 256;
    cfg.blockBytes = 64;
    cfg.payloadBytes = 8;
    cfg.seed = 77;
    RecursivePathOram oram(cfg, rcfg(4, 16));

    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        const BlockId id = rng.nextBounded(256);
        if (rng.nextBool(0.5)) {
            std::vector<std::uint8_t> data(
                8, static_cast<std::uint8_t>(i));
            oram.writeBlock(id, data);
            ref[id] = data;
        } else if (ref.count(id)) {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            EXPECT_EQ(out, ref[id]) << "id " << id;
        }
    }
    EXPECT_EQ(oram.auditRecursive(), "");
}

TEST(RecursivePathOram, TrafficIncludesMapLevels)
{
    EngineConfig cfg;
    cfg.numBlocks = 4096;
    cfg.blockBytes = 64;
    cfg.seed = 78;
    RecursivePathOram oram(cfg, rcfg(4, 16));
    const std::uint64_t map_levels = oram.positionMap().oramLevels();
    ASSERT_GT(map_levels, 0u);

    const auto before = oram.meter().counters();
    oram.touch(9);
    const auto d = oram.meter().counters().since(before);
    // One data path + one path per map level.
    EXPECT_EQ(d.pathReads, 1 + map_levels);
    EXPECT_EQ(d.pathWrites, 1 + map_levels);
}

TEST(RecursivePathOram, CostExceedsFlatClient)
{
    // The ablation the paper's flat-map choice rests on: recursion
    // multiplies per-access traffic.
    EngineConfig cfg;
    cfg.numBlocks = 4096;
    cfg.blockBytes = 64;
    cfg.seed = 79;
    RecursivePathOram recursive(cfg, rcfg(8, 64));

    Rng rng(9);
    std::vector<BlockId> trace;
    for (int i = 0; i < 300; ++i)
        trace.push_back(rng.nextBounded(4096));
    recursive.runTrace(trace);

    // Flat-map PathORAM on the same trace.
    PathOram flat(cfg);
    flat.runTrace(trace);

    EXPECT_GT(recursive.meter().counters().totalBytes(),
              flat.meter().counters().totalBytes());
    EXPECT_GT(recursive.meter().clock().nanoseconds(),
              flat.meter().clock().nanoseconds());
}

} // namespace
} // namespace laoram::oram
