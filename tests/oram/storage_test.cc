/**
 * @file
 * Server-storage tests: record round trips, dummies, encryption at
 * rest, and the adversary access sink.
 */

#include <gtest/gtest.h>

#include <vector>

#include "oram/server_storage.hh"

namespace laoram::oram {
namespace {

TreeGeometry
smallGeom()
{
    return TreeGeometry(64, 64, BucketProfile::uniform(4));
}

TEST(ServerStorage, StartsAllDummies)
{
    auto g = smallGeom();
    ServerStorage s(g, 32, false);
    StoredBlock b;
    for (std::uint64_t slot = 0; slot < s.slots(); slot += 17) {
        s.readSlot(slot, b);
        EXPECT_TRUE(b.isDummy());
    }
}

TEST(ServerStorage, WriteReadRoundTrip)
{
    auto g = smallGeom();
    ServerStorage s(g, 32, false);
    std::vector<std::uint8_t> payload(32);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 3);

    s.writeSlot(10, 1234, 7, payload.data(), payload.size());
    StoredBlock b;
    s.readSlot(10, b);
    EXPECT_EQ(b.id, 1234u);
    EXPECT_EQ(b.leaf, 7u);
    EXPECT_EQ(b.payload, payload);
    EXPECT_FALSE(b.isDummy());
}

TEST(ServerStorage, ShortPayloadZeroPadded)
{
    auto g = smallGeom();
    ServerStorage s(g, 16, false);
    std::vector<std::uint8_t> payload{1, 2, 3};
    s.writeSlot(0, 5, 1, payload.data(), payload.size());
    StoredBlock b;
    s.readSlot(0, b);
    ASSERT_EQ(b.payload.size(), 16u);
    EXPECT_EQ(b.payload[0], 1);
    EXPECT_EQ(b.payload[2], 3);
    for (std::size_t i = 3; i < 16; ++i)
        EXPECT_EQ(b.payload[i], 0);
}

TEST(ServerStorage, DummyOverwriteErases)
{
    auto g = smallGeom();
    ServerStorage s(g, 8, false);
    std::vector<std::uint8_t> payload(8, 0xAA);
    s.writeSlot(3, 42, 9, payload.data(), payload.size());
    s.writeDummy(3);
    StoredBlock b;
    s.readSlot(3, b);
    EXPECT_TRUE(b.isDummy());
}

TEST(ServerStorage, ZeroPayloadMode)
{
    auto g = smallGeom();
    ServerStorage s(g, 0, false);
    EXPECT_EQ(s.payloadBytes(), 0u);
    EXPECT_EQ(s.recordBytes(), 16u);
    s.writeSlot(1, 77, 3, nullptr, 0);
    StoredBlock b;
    s.readSlot(1, b);
    EXPECT_EQ(b.id, 77u);
    EXPECT_EQ(b.leaf, 3u);
    EXPECT_TRUE(b.payload.empty());
}

TEST(ServerStorage, EncryptedRoundTrip)
{
    auto g = smallGeom();
    ServerStorage s(g, 32, true, /*keySeed=*/99);
    std::vector<std::uint8_t> payload(32, 0x5C);
    s.writeSlot(20, 8, 2, payload.data(), payload.size());
    StoredBlock b;
    s.readSlot(20, b);
    EXPECT_EQ(b.id, 8u);
    EXPECT_EQ(b.leaf, 2u);
    EXPECT_EQ(b.payload, payload);
    // Re-read works (epoch unchanged between writes).
    s.readSlot(20, b);
    EXPECT_EQ(b.id, 8u);
}

TEST(ServerStorage, EncryptedRewriteStillReads)
{
    auto g = smallGeom();
    ServerStorage s(g, 16, true, 3);
    std::vector<std::uint8_t> p1(16, 1), p2(16, 2);
    s.writeSlot(4, 10, 0, p1.data(), p1.size());
    s.writeSlot(4, 11, 1, p2.data(), p2.size());
    StoredBlock b;
    s.readSlot(4, b);
    EXPECT_EQ(b.id, 11u);
    EXPECT_EQ(b.payload, p2);
}

TEST(ServerStorage, EncryptedDummiesDecryptCleanly)
{
    auto g = smallGeom();
    ServerStorage s(g, 8, true, 5);
    StoredBlock b;
    for (std::uint64_t slot = 0; slot < s.slots(); slot += 29) {
        s.readSlot(slot, b);
        EXPECT_TRUE(b.isDummy());
    }
}

TEST(ServerStorage, ResidentBytesMatchLayout)
{
    auto g = smallGeom();
    ServerStorage s(g, 48, false);
    EXPECT_EQ(s.residentBytes(), g.totalSlots() * (16 + 48));
}

TEST(ServerStorage, AccessSinkSeesReadsAndWrites)
{
    auto g = smallGeom();
    ServerStorage s(g, 0, false);
    std::vector<std::pair<std::uint64_t, bool>> log;
    s.setAccessSink([&](std::uint64_t slot, bool write) {
        log.emplace_back(slot, write);
    });
    StoredBlock b;
    s.readSlot(7, b);
    s.writeSlot(9, 1, 0, nullptr, 0);
    s.writeDummy(11);
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], std::make_pair(std::uint64_t{7}, false));
    EXPECT_EQ(log[1], std::make_pair(std::uint64_t{9}, true));
    EXPECT_EQ(log[2], std::make_pair(std::uint64_t{11}, true));
}

} // namespace
} // namespace laoram::oram
