/**
 * @file
 * PathORAM engine tests: functional correctness, invariants, stash
 * behaviour, metering, and new-path uniformity.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "oram/evictor.hh"
#include "oram/path_oram.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

EngineConfig
smallConfig(std::uint64_t blocks = 128, std::uint64_t payload = 16,
            bool encrypt = false)
{
    EngineConfig cfg;
    cfg.numBlocks = blocks;
    cfg.blockBytes = 64;
    cfg.payloadBytes = payload;
    cfg.profile = BucketProfile::uniform(4);
    cfg.encrypt = encrypt;
    cfg.seed = 12345;
    return cfg;
}

std::vector<std::uint8_t>
patternPayload(BlockId id, std::uint64_t len, int salt = 0)
{
    std::vector<std::uint8_t> v(len);
    for (std::uint64_t i = 0; i < len; ++i)
        v[i] = static_cast<std::uint8_t>(id * 13 + i + salt);
    return v;
}

TEST(PathOram, UnwrittenBlockReadsAsZeros)
{
    PathOram oram(smallConfig());
    std::vector<std::uint8_t> out;
    oram.readBlock(42, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));
}

TEST(PathOram, ReadYourWrites)
{
    PathOram oram(smallConfig());
    oram.writeBlock(7, patternPayload(7, 16));
    std::vector<std::uint8_t> out;
    oram.readBlock(7, out);
    EXPECT_EQ(out, patternPayload(7, 16));
}

TEST(PathOram, RandomOpsMatchReferenceMap)
{
    PathOram oram(smallConfig());
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(99);
    for (int i = 0; i < 800; ++i) {
        const BlockId id = rng.nextBounded(128);
        if (rng.nextBool(0.5)) {
            auto data = patternPayload(id, 16, i);
            oram.writeBlock(id, data);
            ref[id] = data;
        } else {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            auto it = ref.find(id);
            if (it != ref.end())
                EXPECT_EQ(out, it->second) << "block " << id;
            else
                EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));
        }
    }
}

TEST(PathOram, RandomOpsWithEncryption)
{
    PathOram oram(smallConfig(64, 16, /*encrypt=*/true));
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(100);
    for (int i = 0; i < 300; ++i) {
        const BlockId id = rng.nextBounded(64);
        if (rng.nextBool(0.5)) {
            auto data = patternPayload(id, 16, i);
            oram.writeBlock(id, data);
            ref[id] = data;
        } else if (ref.count(id)) {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            EXPECT_EQ(out, ref[id]);
        }
    }
}

TEST(PathOram, InvariantAuditAfterChurn)
{
    PathOram oram(smallConfig());
    Rng rng(5);
    for (int i = 0; i < 500; ++i)
        oram.touch(rng.nextBounded(128));
    EXPECT_EQ(auditTree(oram.geometry(), oram.storageForAudit(),
                        oram.stashForAudit(), oram.posmapForAudit()),
              "");
}

TEST(PathOram, MetersOnePathReadPerAccess)
{
    PathOram oram(smallConfig());
    Rng rng(6);
    for (int i = 0; i < 200; ++i)
        oram.touch(rng.nextBounded(128));
    const auto &c = oram.meter().counters();
    EXPECT_EQ(c.logicalAccesses, 200u);
    EXPECT_EQ(c.pathReads, 200u);
    EXPECT_EQ(c.pathWrites, 200u);
    EXPECT_EQ(c.bytesRead,
              200u * oram.geometry().pathBytes()
                  + c.dummyReads * oram.geometry().pathBytes());
}

TEST(PathOram, SimulatedTimeAdvances)
{
    PathOram oram(smallConfig());
    oram.touch(0);
    const double t1 = oram.meter().clock().nanoseconds();
    EXPECT_GT(t1, 0.0);
    oram.touch(1);
    EXPECT_GT(oram.meter().clock().nanoseconds(), t1);
}

TEST(PathOram, StashStaysSmallOnUniformTraffic)
{
    auto cfg = smallConfig(1024, 0);
    PathOram oram(cfg);
    Rng rng(8);
    std::uint64_t peak = 0;
    for (int i = 0; i < 3000; ++i) {
        oram.touch(rng.nextBounded(1024));
        peak = std::max(peak, oram.stashSize());
    }
    // Z=4 PathORAM stash is known to stay tiny (paper §II-E).
    EXPECT_LT(peak, 100u);
    EXPECT_EQ(oram.meter().counters().dummyReads, 0u);
}

TEST(PathOram, NewLeafAssignmentIsUniform)
{
    // Theorem check (paper §VI): after many accesses the remapped
    // leaves are uniform over the leaf domain.
    auto cfg = smallConfig(256, 0);
    PathOram oram(cfg);
    const std::uint64_t leaves = oram.geometry().numLeaves();
    std::vector<std::uint64_t> hist(leaves, 0);
    Rng rng(10);
    constexpr int kAccesses = 16384;
    for (int i = 0; i < kAccesses; ++i) {
        const BlockId id = rng.nextBounded(256);
        oram.touch(id);
        ++hist[oram.posmapForAudit().get(id)];
    }
    const double expected =
        static_cast<double>(kAccesses) / static_cast<double>(leaves);
    double chi2 = 0;
    for (auto c : hist) {
        chi2 += (static_cast<double>(c) - expected)
            * (static_cast<double>(c) - expected) / expected;
    }
    // df = 255; p=0.001 cutoff ~ 330.
    EXPECT_LT(chi2, 340.0);
}

TEST(PathOram, WorksOnFatTree)
{
    auto cfg = smallConfig();
    cfg.profile = BucketProfile::fat(4);
    PathOram oram(cfg);
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
        const BlockId id = rng.nextBounded(128);
        auto data = patternPayload(id, 16, i);
        oram.writeBlock(id, data);
        ref[id] = data;
    }
    for (const auto &[id, data] : ref) {
        std::vector<std::uint8_t> out;
        oram.readBlock(id, out);
        EXPECT_EQ(out, data);
    }
    EXPECT_EQ(auditTree(oram.geometry(), oram.storageForAudit(),
                        oram.stashForAudit(), oram.posmapForAudit()),
              "");
}

TEST(PathOram, RunTraceTouchesEverything)
{
    PathOram oram(smallConfig(64, 0));
    std::vector<BlockId> trace{1, 5, 1, 63, 0, 5};
    oram.runTrace(trace);
    EXPECT_EQ(oram.meter().counters().logicalAccesses, trace.size());
}

TEST(PathOram, StashHitStillReadsPath)
{
    // Access the same block twice in a row; even if the second find
    // hits the stash the path traffic must be identical (that is the
    // obliviousness contract).
    PathOram oram(smallConfig(64, 0));
    oram.touch(3);
    const auto before = oram.meter().counters();
    oram.touch(3);
    const auto delta = oram.meter().counters().since(before);
    EXPECT_EQ(delta.pathReads, 1u);
    EXPECT_EQ(delta.pathWrites, 1u);
}

TEST(PathOram, RejectsOutOfRangeBlock)
{
    PathOram oram(smallConfig(16, 0));
    EXPECT_DEATH(oram.touch(16), "out of range");
}

/** Parameterised correctness sweep over tree shapes. */
struct ShapeCase
{
    std::uint64_t blocks;
    std::uint64_t leafZ;
    std::uint64_t rootZ;
    std::uint64_t payload;
};

class PathOramShapes : public ::testing::TestWithParam<ShapeCase>
{
};

TEST_P(PathOramShapes, ReadYourWritesAndAudit)
{
    const auto p = GetParam();
    EngineConfig cfg;
    cfg.numBlocks = p.blocks;
    cfg.blockBytes = 64;
    cfg.payloadBytes = p.payload;
    cfg.profile = BucketProfile::linear(p.leafZ, p.rootZ);
    cfg.seed = 77;
    PathOram oram(cfg);
    Rng rng(p.blocks);
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    for (int i = 0; i < 250; ++i) {
        const BlockId id = rng.nextBounded(p.blocks);
        auto data = patternPayload(id, p.payload, i);
        oram.writeBlock(id, data);
        ref[id] = data;
    }
    for (const auto &[id, data] : ref) {
        std::vector<std::uint8_t> out;
        oram.readBlock(id, out);
        EXPECT_EQ(out, data);
    }
    EXPECT_EQ(auditTree(oram.geometry(), oram.storageForAudit(),
                        oram.stashForAudit(), oram.posmapForAudit()),
              "");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PathOramShapes,
    ::testing::Values(ShapeCase{8, 2, 2, 8}, ShapeCase{64, 4, 4, 16},
                      ShapeCase{100, 4, 8, 8}, ShapeCase{256, 5, 9, 4},
                      ShapeCase{1000, 6, 6, 8},
                      ShapeCase{2048, 4, 8, 0}));

} // namespace
} // namespace laoram::oram
