/**
 * @file
 * PathIo tests: path reads absorb blocks, greedy write-back places
 * deepest-first, and the tree auditor catches corruption.
 */

#include <gtest/gtest.h>

#include "oram/evictor.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

struct PathIoFixture : public ::testing::Test
{
    PathIoFixture()
        : geom(64, 8, BucketProfile::uniform(4)),
          storage(geom, 8, false),
          rng(7),
          posmap(64, geom.numLeaves(), rng),
          io(geom, storage, stash)
    {
    }

    std::vector<std::uint8_t>
    payloadFor(BlockId id)
    {
        return std::vector<std::uint8_t>(8,
                                         static_cast<std::uint8_t>(id));
    }

    TreeGeometry geom;
    ServerStorage storage;
    Rng rng;
    PositionMap posmap;
    Stash stash;
    PathIo io;
};

TEST_F(PathIoFixture, ReadEmptyPathAbsorbsNothing)
{
    EXPECT_EQ(io.readPath(0), 0u);
    EXPECT_TRUE(stash.empty());
}

TEST_F(PathIoFixture, WriteThenReadRoundTripsBlock)
{
    const Leaf leaf = 5;
    posmap.set(1, leaf);
    stash.put(1, leaf, payloadFor(1));
    EXPECT_EQ(io.writePath(leaf), 1u);
    EXPECT_TRUE(stash.empty());

    EXPECT_EQ(io.readPath(leaf), 1u);
    ASSERT_TRUE(stash.contains(1));
    EXPECT_EQ(stash.find(1)->leaf, leaf);
    EXPECT_EQ(stash.find(1)->payload, payloadFor(1));
}

TEST_F(PathIoFixture, BlockOnOwnLeafGoesToLeafBucket)
{
    // A block whose assigned leaf equals the written path should land
    // in the deepest (leaf) bucket.
    const Leaf leaf = 3;
    posmap.set(2, leaf);
    stash.put(2, leaf, payloadFor(2));
    io.writePath(leaf);

    const NodeIndex leaf_node = geom.pathNode(leaf, geom.leafLevel());
    StoredBlock b;
    bool found = false;
    const std::uint64_t base = geom.nodeSlotBase(leaf_node);
    for (std::uint64_t s = 0; s < geom.bucketSize(geom.leafLevel());
         ++s) {
        storage.readSlot(base + s, b);
        if (!b.isDummy() && b.id == 2)
            found = true;
    }
    EXPECT_TRUE(found) << "block should be placed at its own leaf";
}

TEST_F(PathIoFixture, DivergentBlockStaysNearRoot)
{
    // Block assigned to the opposite half of the tree can only share
    // the root with the written path.
    const Leaf block_leaf = 0;
    const Leaf write_leaf = geom.numLeaves() - 1;
    posmap.set(3, block_leaf);
    stash.put(3, block_leaf, payloadFor(3));
    io.writePath(write_leaf);
    EXPECT_TRUE(stash.empty()) << "root must have had space";

    StoredBlock b;
    bool in_root = false;
    for (std::uint64_t s = 0; s < geom.bucketSize(0); ++s) {
        storage.readSlot(geom.nodeSlotBase(0) + s, b);
        if (!b.isDummy() && b.id == 3)
            in_root = true;
    }
    EXPECT_TRUE(in_root);
}

TEST_F(PathIoFixture, OverflowingBlocksStayInStash)
{
    // More same-leaf blocks than the path can hold: the surplus must
    // remain stashed, never dropped.
    const Leaf leaf = 9;
    const std::uint64_t capacity = geom.pathSlots();
    const std::uint64_t surplus = 5;
    for (BlockId id = 0; id < capacity + surplus; ++id) {
        if (id >= geom.numBlocks())
            break;
        posmap.set(id, leaf);
        stash.put(id, leaf, payloadFor(id));
    }
    const std::uint64_t staged = stash.size();
    const std::uint64_t written = io.writePath(leaf);
    EXPECT_EQ(written, std::min(staged, capacity));
    EXPECT_EQ(stash.size(), staged - written);
}

TEST_F(PathIoFixture, AuditPassesAfterRandomChurn)
{
    // Random accesses through raw PathIo keep the invariant.
    for (int round = 0; round < 200; ++round) {
        const BlockId id = rng.nextBounded(geom.numBlocks());
        const Leaf cur = posmap.get(id);
        io.readPath(cur);
        const Leaf next = rng.nextBounded(geom.numLeaves());
        posmap.set(id, next);
        if (StashEntry *e = stash.find(id))
            e->leaf = next;
        else
            stash.put(id, next, payloadFor(id));
        io.writePath(cur);
    }
    EXPECT_EQ(auditTree(geom, storage, stash, posmap), "");
}

TEST_F(PathIoFixture, AuditCatchesMisplacedBlock)
{
    // Plant a block on a node that is NOT on its mapped path.
    posmap.set(4, 0);
    const Leaf other = geom.numLeaves() - 1;
    const NodeIndex wrong = geom.pathNode(other, geom.leafLevel());
    auto payload = payloadFor(4);
    storage.writeSlot(geom.nodeSlotBase(wrong), 4, 0, payload.data(),
                      payload.size());
    EXPECT_NE(auditTree(geom, storage, stash, posmap), "");
}

TEST_F(PathIoFixture, AuditCatchesStaleLeafField)
{
    posmap.set(6, 2);
    auto payload = payloadFor(6);
    // Stored leaf (7) disagrees with the position map (2).
    storage.writeSlot(geom.nodeSlotBase(0), 6, 7, payload.data(),
                      payload.size());
    EXPECT_NE(auditTree(geom, storage, stash, posmap), "");
}

TEST_F(PathIoFixture, AuditCatchesTreeStashDuplicate)
{
    const Leaf leaf = 1;
    posmap.set(8, leaf);
    auto payload = payloadFor(8);
    storage.writeSlot(geom.nodeSlotBase(0), 8, leaf, payload.data(),
                      payload.size());
    stash.put(8, leaf, payloadFor(8));
    EXPECT_NE(auditTree(geom, storage, stash, posmap), "");
}

TEST_F(PathIoFixture, FatTreePathHoldsMoreBlocks)
{
    TreeGeometry fat_geom(64, 8, BucketProfile::fat(4));
    ServerStorage fat_storage(fat_geom, 8, false);
    Stash fat_stash;
    PathIo fat_io(fat_geom, fat_storage, fat_stash);

    const Leaf leaf = 2;
    for (BlockId id = 0; id < fat_geom.pathSlots(); ++id) {
        if (id >= fat_geom.numBlocks())
            break;
        fat_stash.put(id, leaf, payloadFor(id));
    }
    const std::uint64_t staged = fat_stash.size();
    const std::uint64_t written = fat_io.writePath(leaf);
    EXPECT_EQ(written, std::min<std::uint64_t>(staged,
                                               fat_geom.pathSlots()));
    EXPECT_GT(fat_geom.pathSlots(), geom.pathSlots());
}

} // namespace
} // namespace laoram::oram
