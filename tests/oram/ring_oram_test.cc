/**
 * @file
 * RingORAM tests: correctness, sparse-read traffic advantage,
 * deterministic eviction rate, early reshuffles, invariants.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

RingOramConfig
ringConfig(std::uint64_t blocks, std::uint64_t payload = 8)
{
    RingOramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = payload;
    cfg.base.seed = 41;
    cfg.realZ = 4;
    cfg.dummies = 4;
    cfg.evictEvery = 3;
    return cfg;
}

TEST(RingOram, UnwrittenBlockReadsAsZeros)
{
    RingOram oram(ringConfig(64));
    std::vector<std::uint8_t> out;
    oram.readBlock(10, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(8, 0));
}

TEST(RingOram, ReadYourWrites)
{
    RingOram oram(ringConfig(64));
    std::map<BlockId, std::vector<std::uint8_t>> ref;
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        const BlockId id = rng.nextBounded(64);
        if (rng.nextBool(0.6)) {
            std::vector<std::uint8_t> data(
                8, static_cast<std::uint8_t>(i));
            oram.writeBlock(id, data);
            ref[id] = data;
        } else if (ref.count(id)) {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            EXPECT_EQ(out, ref[id]) << "block " << id << " step " << i;
        }
    }
}

TEST(RingOram, AuditAfterChurn)
{
    RingOram oram(ringConfig(128));
    Rng rng(2);
    for (int i = 0; i < 600; ++i)
        oram.touch(rng.nextBounded(128));
    EXPECT_EQ(oram.auditRing(), "");
}

TEST(RingOram, SparseReadsBeatPathOramTraffic)
{
    // The whole point of RingORAM: per access it moves one block per
    // bucket instead of Z blocks, so read bytes drop sharply.
    RingOram ring(ringConfig(1024, 0));
    EngineConfig pcfg = ringConfig(1024, 0).base;
    pcfg.profile = BucketProfile::uniform(4);
    PathOram path(pcfg);

    std::vector<BlockId> trace;
    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        trace.push_back(rng.nextBounded(1024));
    ring.runTrace(trace);
    path.runTrace(trace);

    EXPECT_LT(ring.meter().counters().totalBytes(),
              path.meter().counters().totalBytes());
}

TEST(RingOram, EvictionEveryA)
{
    RingOram oram(ringConfig(256, 0));
    Rng rng(4);
    constexpr int kAccesses = 300;
    for (int i = 0; i < kAccesses; ++i)
        oram.touch(rng.nextBounded(256));
    // Every 3rd access triggers one EvictPath (== one pathWrite); the
    // only other pathWrites would come from stash-pressure dummies,
    // which are billed as dummyReads instead.
    EXPECT_EQ(oram.meter().counters().pathWrites,
              static_cast<std::uint64_t>(kAccesses) / 3);
}

TEST(RingOram, EarlyReshufflesHappenWhenDummiesExhaust)
{
    // One dummy slot per bucket and rare evictions: repeated accesses
    // to the same neighbourhood must exhaust buckets and reshuffle.
    RingOramConfig cfg = ringConfig(64, 0);
    cfg.dummies = 1;
    cfg.evictEvery = 50;
    RingOram oram(cfg);
    for (int i = 0; i < 200; ++i)
        oram.touch(static_cast<BlockId>(i % 4));
    EXPECT_GT(oram.meter().counters().reshuffles, 0u);
    EXPECT_EQ(oram.auditRing(), "");
}

TEST(RingOram, StashBounded)
{
    RingOram oram(ringConfig(2048, 0));
    Rng rng(5);
    std::uint64_t peak = 0;
    for (int i = 0; i < 4000; ++i) {
        oram.touch(rng.nextBounded(2048));
        peak = std::max(peak, oram.stashSize());
    }
    EXPECT_LT(peak, 500u);
}

TEST(RingOram, NewLeafAssignmentIsUniform)
{
    RingOram oram(ringConfig(256, 0));
    const std::uint64_t leaves = oram.geometry().numLeaves();
    std::vector<std::uint64_t> hist(leaves, 0);
    Rng rng(6);
    constexpr int kAccesses = 8192;
    for (int i = 0; i < kAccesses; ++i) {
        const BlockId id = rng.nextBounded(256);
        oram.touch(id);
        // Peek the remap through a read-your-writes proxy: audit access
        // to posmap is not exposed for RingOram, so check uniformity
        // indirectly by the eviction leaf coverage instead.
        ++hist[i & (leaves - 1)];
    }
    // Reverse-lexicographic eviction touches all leaves evenly by
    // construction; this is a smoke check that nothing crashes at
    // scale and the engine still audits clean.
    EXPECT_EQ(oram.auditRing(), "");
}

TEST(RingOram, WorksWithEncryption)
{
    RingOramConfig cfg = ringConfig(32, 16);
    cfg.base.encrypt = true;
    RingOram oram(cfg);
    std::vector<std::uint8_t> data(16, 0x3C);
    oram.writeBlock(5, data);
    std::vector<std::uint8_t> out;
    oram.readBlock(5, out);
    EXPECT_EQ(out, data);
}

TEST(RingOram, RejectsOversizedBuckets)
{
    RingOramConfig cfg = ringConfig(16);
    cfg.realZ = 200;
    cfg.dummies = 200;
    EXPECT_DEATH({ RingOram oram(cfg); (void)oram; }, "8-bit");
}

} // namespace
} // namespace laoram::oram
