/**
 * @file
 * Unit + property tests for the deterministic RNG suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "util/rng.hh"

namespace laoram {
namespace {

TEST(SplitMix64, KnownSequence)
{
    // Reference values from the public-domain splitmix64.c with
    // initial state 0 (state is pre-incremented by the golden gamma).
    std::uint64_t state = 0;
    EXPECT_EQ(splitMix64(state), 0xE220A8397B1DCDAFULL);
    EXPECT_EQ(splitMix64(state), 0x6E789E6AA1B965F4ULL);
    EXPECT_EQ(splitMix64(state), 0x06C45D188009454FULL);
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng d(42), e(43);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (d.next() == e.next());
    EXPECT_LT(same, 3) << "different seeds should diverge";
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                (1ULL << 33) + 7}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    // Coarse chi-square over 16 cells; threshold is generous (df=15,
    // p=0.001 cutoff is ~37.7).
    Rng rng(17);
    constexpr int kCells = 16;
    constexpr int kSamples = 160000;
    std::vector<int> hist(kCells, 0);
    for (int i = 0; i < kSamples; ++i)
        ++hist[rng.nextBounded(kCells)];
    const double expected = double(kSamples) / kCells;
    double chi2 = 0;
    for (int c : hist)
        chi2 += (c - expected) * (c - expected) / expected;
    EXPECT_LT(chi2, 45.0) << "bounded sampling badly non-uniform";
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    constexpr int kSamples = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < kSamples; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / kSamples;
    const double var = sumsq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SplitDecorrelates)
{
    Rng parent(29);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 3);
}

TEST(Zipf, RanksInRange)
{
    Rng rng(31);
    ZipfSampler zipf(1000, 1.0);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf(rng), 1000u);
}

TEST(Zipf, LowRanksDominate)
{
    Rng rng(37);
    ZipfSampler zipf(10000, 1.0);
    std::map<std::uint64_t, int> freq;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        ++freq[zipf(rng)];
    // Rank 0 should be the most frequent, and the top-10 ranks should
    // hold a large share (harmonic: ~29% for n=1e4, s=1).
    int top10 = 0;
    for (std::uint64_t r = 0; r < 10; ++r)
        top10 += freq.count(r) ? freq[r] : 0;
    EXPECT_GT(freq[0], freq.count(100) ? freq[100] : 0);
    EXPECT_GT(double(top10) / kSamples, 0.20);
    EXPECT_LT(double(top10) / kSamples, 0.45);
}

TEST(Zipf, SkewSharpensHead)
{
    Rng rng1(41), rng2(41);
    ZipfSampler mild(10000, 0.8), sharp(10000, 1.4);
    constexpr int kSamples = 30000;
    int mild0 = 0, sharp0 = 0;
    for (int i = 0; i < kSamples; ++i) {
        mild0 += (mild(rng1) == 0);
        sharp0 += (sharp(rng2) == 0);
    }
    EXPECT_GT(sharp0, mild0);
}

TEST(Zipf, SingleItem)
{
    Rng rng(43);
    ZipfSampler zipf(1, 1.2);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(zipf(rng), 0u);
}

TEST(GaussianIndex, StaysInRange)
{
    Rng rng(47);
    GaussianIndexSampler g(1000);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(g(rng), 1000u);
}

TEST(GaussianIndex, DefaultsCenterAndSpread)
{
    Rng rng(53);
    GaussianIndexSampler g(100000);
    EXPECT_DOUBLE_EQ(g.mean(), 50000.0);
    EXPECT_DOUBLE_EQ(g.stddev(), 12500.0);
    double sum = 0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        sum += static_cast<double>(g(rng));
    EXPECT_NEAR(sum / kSamples, 50000.0, 300.0);
}

TEST(GaussianIndex, CustomMeanRespected)
{
    Rng rng(59);
    GaussianIndexSampler g(100000, 10000.0, 500.0);
    double sum = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i)
        sum += static_cast<double>(g(rng));
    EXPECT_NEAR(sum / kSamples, 10000.0, 100.0);
}

/** Property sweep: bounded uniformity across many bounds. */
class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundsTest, MeanNearHalfBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(61 + bound);
    constexpr int kSamples = 40000;
    double sum = 0;
    for (int i = 0; i < kSamples; ++i)
        sum += static_cast<double>(rng.nextBounded(bound));
    const double mean = sum / kSamples;
    const double expect = (static_cast<double>(bound) - 1.0) / 2.0;
    const double sigma = static_cast<double>(bound)
        / std::sqrt(12.0 * kSamples);
    EXPECT_NEAR(mean, expect, 6.0 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(2, 3, 7, 100, 1024, 100000,
                                           1ULL << 31));

} // namespace
} // namespace laoram
