/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/stats.hh"

namespace laoram {
namespace {

TEST(Counter, StartsAtZeroAndCounts)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsAllZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0); // classic textbook set
    EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(-3.5);
    EXPECT_DOUBLE_EQ(a.mean(), -3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), -3.5);
    EXPECT_DOUBLE_EQ(a.maximum(), -3.5);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.sample(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.buckets(), 5u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 8.0);
    h.sample(0.0);
    h.sample(1.99);
    h.sample(2.0);
    h.sample(9.99);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 2);
    h.sample(-0.1);
    h.sample(1.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileOnUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(StatRegistry, CounterRegistrationAndLookup)
{
    StatRegistry reg;
    Counter &c = reg.counter("oram.pathReads", "paths fetched");
    ++c;
    ++c;
    EXPECT_EQ(reg.counterAt("oram.pathReads").value(), 2u);
    EXPECT_TRUE(reg.hasCounter("oram.pathReads"));
    EXPECT_FALSE(reg.hasCounter("oram.bogus"));
    // Re-registration returns the same counter.
    Counter &again = reg.counter("oram.pathReads");
    ++again;
    EXPECT_EQ(reg.counterAt("oram.pathReads").value(), 3u);
}

TEST(StatRegistry, FormulaEvaluates)
{
    StatRegistry reg;
    Counter &a = reg.counter("a");
    Counter &b = reg.counter("b");
    a += 10;
    b += 4;
    reg.formula("ratio", "a per b", [&] {
        return static_cast<double>(a.value())
            / static_cast<double>(b.value());
    });
    EXPECT_DOUBLE_EQ(reg.formulaAt("ratio"), 2.5);
}

TEST(StatRegistry, DumpContainsEntries)
{
    StatRegistry reg;
    reg.counter("hits", "cache hits") += 7;
    reg.accumulator("lat", "latency").sample(3.0);
    reg.formula("two", "", [] { return 2.0; });
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("hits"), std::string::npos);
    EXPECT_NE(out.find("lat.mean"), std::string::npos);
    EXPECT_NE(out.find("two"), std::string::npos);
    EXPECT_NE(out.find("cache hits"), std::string::npos);
}

TEST(StatRegistry, CsvDump)
{
    StatRegistry reg;
    reg.counter("x") += 1;
    std::ostringstream os;
    reg.dumpCsv(os);
    EXPECT_NE(os.str().find("stat,value"), std::string::npos);
    EXPECT_NE(os.str().find("x,1"), std::string::npos);
}

TEST(StatRegistry, ResetAllZeroesCounters)
{
    StatRegistry reg;
    reg.counter("n") += 5;
    reg.accumulator("acc").sample(2.0);
    reg.resetAll();
    EXPECT_EQ(reg.counterAt("n").value(), 0u);
}

} // namespace
} // namespace laoram
