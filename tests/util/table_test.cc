/**
 * @file
 * Unit tests for the text-table / CSV emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace laoram {
namespace {

TEST(TextTable, BasicLayout)
{
    TextTable t({"config", "speedup"});
    t.addRow({"PathORAM", "1.00"});
    t.addRow({"Fat/S4", "1.85"});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("config"), std::string::npos);
    EXPECT_NE(out.find("PathORAM"), std::string::npos);
    EXPECT_NE(out.find("Fat/S4"), std::string::npos);
    // Header separator rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumericCells)
{
    EXPECT_EQ(TextTable::cell(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::cell(1.235, 1), "1.2");
    EXPECT_EQ(TextTable::cell(std::uint64_t{42}), "42");
}

TEST(TextTable, BytesCells)
{
    EXPECT_EQ(TextTable::bytesCell(512), "512.0 B");
    EXPECT_EQ(TextTable::bytesCell(1024), "1.00 KiB");
    EXPECT_EQ(TextTable::bytesCell(8ULL << 30), "8.00 GiB");
    EXPECT_EQ(TextTable::bytesCell(1536), "1.50 KiB");
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"x", "yyyyyyyy"});
    t.addRow({"looooong", "1"});
    std::ostringstream os;
    t.print(os);
    // Both rows should have the same line length after padding.
    std::istringstream is(os.str());
    std::string header, rule, row;
    std::getline(is, header);
    std::getline(is, rule);
    std::getline(is, row);
    // Trailing spaces may differ; compare the column-start offsets by
    // finding the second column text positions.
    EXPECT_EQ(header.find("yyyyyyyy"), row.find("1"));
}

} // namespace
} // namespace laoram
