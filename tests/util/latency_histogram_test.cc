#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/latency_histogram.hh"
#include "util/rng.hh"

namespace laoram {
namespace {

TEST(LatencyHistogram, EmptyReportsZeros)
{
    StreamingHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    const LatencyReport rep = h.report();
    EXPECT_EQ(rep.requests, 0u);
    EXPECT_EQ(rep.p50Ns, 0.0);
    EXPECT_EQ(rep.p999Ns, 0.0);
    EXPECT_EQ(rep.maxNs, 0.0);
}

TEST(LatencyHistogram, ExactInLinearTier)
{
    // Values below kSubBuckets land in exact one-wide buckets, so
    // quantiles are exact (up to within-bucket interpolation).
    StreamingHistogram h;
    for (std::int64_t v = 0; v < 16; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 16u);
    EXPECT_EQ(h.minimum(), 0);
    EXPECT_EQ(h.maximum(), 15);
    EXPECT_NEAR(h.quantile(0.5), 7.5, 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
}

TEST(LatencyHistogram, NegativeSamplesDroppedButCounted)
{
    // A negative duration is caller timing corruption; it must not
    // deflate the percentiles (old behavior folded it into bucket 0)
    // but it must stay visible in a dedicated counter.
    StreamingHistogram h;
    h.record(-100);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.droppedNegative(), 1u);
    EXPECT_EQ(h.quantile(0.5), 0.0);

    h.record(500);
    h.record(-1);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.droppedNegative(), 2u);
    EXPECT_EQ(h.minimum(), 500);
    EXPECT_EQ(h.maximum(), 500);
    EXPECT_DOUBLE_EQ(h.sum(), 500.0);

    const LatencyReport rep = h.report();
    EXPECT_EQ(rep.requests, 1u);
    EXPECT_EQ(rep.droppedNegative, 2u);
    EXPECT_DOUBLE_EQ(rep.maxNs, 500.0);
}

TEST(LatencyHistogram, NegativeCounterMergesAndResets)
{
    StreamingHistogram a, b;
    a.record(-7);
    b.record(-8);
    b.record(10);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.droppedNegative(), 2u);
    a.reset();
    EXPECT_EQ(a.droppedNegative(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Log-linear bucketing guarantees <= 1/kSubBuckets relative
    // quantile error at any magnitude; verify against the exact
    // quantiles of a broad sample set.
    Rng rng(7);
    std::vector<std::int64_t> samples;
    StreamingHistogram h;
    for (int i = 0; i < 20000; ++i) {
        // Magnitudes from ~100 ns to ~100 ms.
        const std::int64_t v = static_cast<std::int64_t>(
            100 + rng.nextBounded(100'000'000));
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = static_cast<double>(
            samples[static_cast<std::size_t>(
                p * (samples.size() - 1))]);
        const double approx = h.quantile(p);
        EXPECT_NEAR(approx, exact, exact * 0.05)
            << "p=" << p << " exact=" << exact
            << " approx=" << approx;
    }
    EXPECT_EQ(h.maximum(), samples.back());
}

TEST(LatencyHistogram, QuantilesMonotone)
{
    Rng rng(11);
    StreamingHistogram h;
    for (int i = 0; i < 5000; ++i)
        h.record(static_cast<std::int64_t>(rng.nextBounded(1u << 20)));
    double prev = 0.0;
    for (const double p :
         {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
        const double q = h.quantile(p);
        EXPECT_GE(q, prev) << "p=" << p;
        prev = q;
    }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    Rng rng(13);
    StreamingHistogram a, b, combined;
    for (int i = 0; i < 3000; ++i) {
        const std::int64_t va =
            static_cast<std::int64_t>(rng.nextBounded(1u << 16));
        const std::int64_t vb = static_cast<std::int64_t>(
            (1u << 20) + rng.nextBounded(1u << 24));
        a.record(va);
        combined.record(va);
        b.record(vb);
        combined.record(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.minimum(), combined.minimum());
    EXPECT_EQ(a.maximum(), combined.maximum());
    for (const double p : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(p), combined.quantile(p));
}

TEST(LatencyHistogram, MergeIntoEmptyAndWithEmpty)
{
    StreamingHistogram a, b, empty;
    b.record(42);
    a.merge(b); // into empty
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.minimum(), 42);
    a.merge(empty); // with empty
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.maximum(), 42);
}

TEST(LatencyHistogram, ReportSectionConsistent)
{
    StreamingHistogram h;
    for (std::int64_t v = 1; v <= 1000; ++v)
        h.record(v * 1000); // 1 us .. 1 ms
    const LatencyReport rep = h.report();
    EXPECT_EQ(rep.requests, 1000u);
    EXPECT_GT(rep.meanNs, 0.0);
    EXPECT_LE(rep.p50Ns, rep.p90Ns);
    EXPECT_LE(rep.p90Ns, rep.p99Ns);
    EXPECT_LE(rep.p99Ns, rep.p999Ns);
    EXPECT_LE(rep.p999Ns, rep.maxNs);
    EXPECT_DOUBLE_EQ(rep.maxNs, 1'000'000.0);
}

TEST(LatencyHistogram, ResetClears)
{
    StreamingHistogram h;
    h.record(123456);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    h.record(7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.maximum(), 7);
}

} // namespace
} // namespace laoram
