/**
 * @file
 * BoundedQueue tests: MPMC stress for the serving-pool regime
 * (several producers and consumers on one queue) and the RAII slot
 * token that keeps a throwing consumer from stranding producers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/reorder_window.hh"
#include "util/bounded_queue.hh"

namespace laoram {
namespace {

TEST(BoundedQueue, MultiProducerMultiConsumerDeliversEachItemOnce)
{
    constexpr std::uint64_t kProducers = 4;
    constexpr std::uint64_t kConsumers = 3;
    constexpr std::uint64_t kPerProducer = 5000;
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;

    BoundedQueue<std::uint64_t> queue(4);
    std::atomic<std::uint64_t> produced{0};
    std::vector<std::uint8_t> seen(kTotal, 0);
    std::mutex seenMu;

    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.push(p * kPerProducer + i));
                produced.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::vector<std::thread> consumers;
    std::atomic<std::uint64_t> consumed{0};
    for (std::uint64_t c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::uint64_t item = 0;
            // Alternate pop() and popDeferred() so both consumer
            // paths run under contention.
            bool deferred = false;
            while (true) {
                bool got;
                if (deferred) {
                    BoundedQueue<std::uint64_t>::SlotToken token;
                    got = queue.popDeferred(item, token);
                    if (got) {
                        EXPECT_TRUE(token.held());
                    }
                } else {
                    got = queue.pop(item);
                }
                if (!got)
                    break;
                deferred = !deferred;
                {
                    std::lock_guard<std::mutex> lock(seenMu);
                    ASSERT_LT(item, kTotal);
                    ASSERT_EQ(seen[item], 0)
                        << "item " << item << " delivered twice";
                    seen[item] = 1;
                }
                consumed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    for (auto &t : producers)
        t.join();
    queue.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(produced.load(), kTotal);
    EXPECT_EQ(consumed.load(), kTotal);
    for (std::uint64_t i = 0; i < kTotal; ++i)
        ASSERT_EQ(seen[i], 1) << "item " << i << " lost";
}

TEST(BoundedQueue, SlotTokenReleasesOnUnwind)
{
    // Capacity-1 queue, producer pushing two items: the second push
    // blocks until the consumer's slot wakeup. The consumer throws
    // between popDeferred and the explicit release — the token's
    // destructor must deliver the wakeup, or the producer deadlocks
    // (pre-token code leaked the slot exactly here).
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(1));

    std::thread producer([&] { EXPECT_TRUE(queue.push(2)); });

    auto consumeAndThrow = [&] {
        int item = 0;
        BoundedQueue<int>::SlotToken token;
        ASSERT_TRUE(queue.popDeferred(item, token));
        EXPECT_EQ(item, 1);
        throw std::runtime_error("consumer died mid-window");
    };
    EXPECT_THROW(consumeAndThrow(), std::runtime_error);

    // Producer unblocks only if the unwound token freed the slot.
    producer.join();
    int item = 0;
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 2);
}

TEST(BoundedQueue, SlotTokenMoveTransfersTheWakeup)
{
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(7));

    int item = 0;
    BoundedQueue<int>::SlotToken token;
    ASSERT_TRUE(queue.popDeferred(item, token));
    EXPECT_TRUE(token.held());

    BoundedQueue<int>::SlotToken moved(std::move(token));
    EXPECT_FALSE(token.held());
    EXPECT_TRUE(moved.held());
    moved.release();
    EXPECT_FALSE(moved.held());

    // Queue stays usable after the transferred release.
    ASSERT_TRUE(queue.push(8));
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 8);
}

TEST(BoundedQueue, ManyProducersReorderDeliveryAndTokenUnwindStress)
{
    // The multi-preprocessor hand-off under contention, end to end:
    // many producers claim contiguous sequence numbers and push them
    // through the MPMC queue (arrival order scrambles), one consumer
    // drains with popDeferred — periodically unwinding through a
    // live SlotToken — and forwards everything into a ReorderWindow,
    // which must restore exact sequence order. The window capacity
    // covers the whole stream because a single relay behind a queue
    // does not satisfy the reorder window's lowest-outstanding-
    // sequence admission invariant (see reorder_window.hh): a small
    // window could legitimately block the relay while the missing
    // sequence still sits in the queue.
    constexpr std::uint64_t kProducers = 6;
    constexpr std::uint64_t kTotal = 6000;

    BoundedQueue<std::uint64_t> queue(3);
    core::ReorderWindow<std::uint64_t> window(kTotal);
    std::atomic<std::uint64_t> ticket{0};

    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            while (true) {
                const std::uint64_t seq =
                    ticket.fetch_add(1, std::memory_order_relaxed);
                if (seq >= kTotal)
                    break;
                ASSERT_TRUE(queue.push(seq));
            }
        });
    }

    std::thread consumer([&] {
        std::uint64_t drained = 0;
        while (true) {
            std::uint64_t seq = 0;
            bool got = false;
            auto popMaybeThrowing = [&] {
                BoundedQueue<std::uint64_t>::SlotToken token;
                got = queue.popDeferred(seq, token);
                // Every 7th delivery unwinds with the token still
                // held: producers must not strand on the leaked
                // slot, and the popped item must still be
                // forwardable by the catch site below.
                if (got && drained % 7 == 3)
                    throw std::runtime_error("mid-window failure");
                token.release();
            };
            try {
                popMaybeThrowing();
            } catch (const std::runtime_error &) {
                // Unwound through the token; the item is in `seq`.
            }
            if (!got)
                break;
            ++drained;
            ASSERT_TRUE(window.push(seq, seq));
        }
        window.close();
        EXPECT_EQ(drained, kTotal);
    });

    // End-of-stream plumbing: producers finish first, then the
    // closed queue lets the consumer drain out and close the window
    // (its kTotal capacity means the consumer never waits on the
    // checker below).
    for (auto &t : producers)
        t.join();
    queue.close();
    consumer.join();

    // Checker: strict sequence order out of the reorder stage.
    std::uint64_t expect = 0;
    std::uint64_t out = 0;
    while (window.pop(out)) {
        ASSERT_EQ(out, expect) << "reorder delivered out of order";
        ++expect;
    }
    EXPECT_EQ(expect, kTotal);
}

TEST(BoundedQueue, CloseDrainsThenReportsExhaustion)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.push(1));
    ASSERT_TRUE(queue.push(2));
    queue.close();

    EXPECT_FALSE(queue.push(3)); // closed: rejected

    int item = 0;
    BoundedQueue<int>::SlotToken token;
    EXPECT_TRUE(queue.popDeferred(item, token));
    EXPECT_EQ(item, 1);
    token.release();
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 2);
    EXPECT_FALSE(queue.pop(item)); // drained
    EXPECT_FALSE(queue.popDeferred(item, token));
    EXPECT_FALSE(token.held()); // exhaustion leaves the token empty
}

} // namespace
} // namespace laoram
