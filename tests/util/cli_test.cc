/**
 * @file
 * Unit tests for the CLI argument parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"

namespace laoram {
namespace {

TEST(ArgParser, DefaultsSurviveEmptyArgs)
{
    ArgParser p("prog", "test");
    auto n = p.addUint("n", "count", 42);
    auto s = p.addString("name", "label", "hello");
    auto f = p.addFlag("fast", "go fast");
    EXPECT_TRUE(p.parseVector({}));
    EXPECT_EQ(*n, 42u);
    EXPECT_EQ(*s, "hello");
    EXPECT_FALSE(*f);
}

TEST(ArgParser, EqualsSyntax)
{
    ArgParser p("prog", "test");
    auto n = p.addUint("n", "count", 0);
    auto d = p.addDouble("ratio", "r", 0.0);
    EXPECT_TRUE(p.parseVector({"--n=123", "--ratio=2.5"}));
    EXPECT_EQ(*n, 123u);
    EXPECT_DOUBLE_EQ(*d, 2.5);
}

TEST(ArgParser, SpaceSyntax)
{
    ArgParser p("prog", "test");
    auto n = p.addUint("n", "count", 0);
    auto s = p.addString("mode", "m", "");
    EXPECT_TRUE(p.parseVector({"--n", "7", "--mode", "fat"}));
    EXPECT_EQ(*n, 7u);
    EXPECT_EQ(*s, "fat");
}

TEST(ArgParser, FlagPresence)
{
    ArgParser p("prog", "test");
    auto f = p.addFlag("full", "paper scale");
    EXPECT_TRUE(p.parseVector({"--full"}));
    EXPECT_TRUE(*f);
}

TEST(ArgParser, SeenTrackerDistinguishesExplicitDefaults)
{
    ArgParser p("prog", "test");
    auto n = p.addUint("n", "count", 42);
    auto m = p.addUint("m", "other", 7);
    auto f = p.addFlag("fast", "go fast");
    auto nSeen = p.seenTracker("n");
    auto mSeen = p.seenTracker("m");
    auto fSeen = p.seenTracker("fast");
    // --n passes its own default explicitly: value unchanged, but the
    // tracker must still fire; untouched options stay unseen.
    EXPECT_TRUE(p.parseVector({"--n", "42", "--fast"}));
    EXPECT_EQ(*n, 42u);
    EXPECT_EQ(*m, 7u);
    EXPECT_TRUE(*nSeen);
    EXPECT_FALSE(*mSeen);
    EXPECT_TRUE(*fSeen);
    (void)f;
}

TEST(ArgParser, SeenTrackerUntouchedOnParseFailure)
{
    ArgParser p("prog", "test");
    p.addUint("n", "count", 1);
    auto nSeen = p.seenTracker("n");
    EXPECT_FALSE(p.parseVector({"--n", "not-a-number"}));
    EXPECT_FALSE(*nSeen);
}

TEST(ArgParser, UnknownOptionFails)
{
    ArgParser p("prog", "test");
    std::string err;
    EXPECT_FALSE(p.parseVector({"--bogus=1"}, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails)
{
    ArgParser p("prog", "test");
    p.addUint("n", "count", 0);
    std::string err;
    EXPECT_FALSE(p.parseVector({"--n"}, &err));
    EXPECT_NE(err.find("needs a value"), std::string::npos);
}

TEST(ArgParser, BadNumberFails)
{
    ArgParser p("prog", "test");
    p.addUint("n", "count", 0);
    std::string err;
    EXPECT_FALSE(p.parseVector({"--n=notanumber"}, &err));
    EXPECT_NE(err.find("bad value"), std::string::npos);
}

TEST(ArgParser, FlagRejectsValue)
{
    ArgParser p("prog", "test");
    p.addFlag("fast", "f");
    std::string err;
    EXPECT_FALSE(p.parseVector({"--fast=yes"}, &err));
}

TEST(ArgParser, PositionalRejected)
{
    ArgParser p("prog", "test");
    std::string err;
    EXPECT_FALSE(p.parseVector({"stray"}, &err));
}

TEST(ArgParser, UsageMentionsOptionsAndDefaults)
{
    ArgParser p("prog", "does things");
    p.addUint("n", "the count", 5);
    p.addFlag("full", "paper scale");
    const std::string u = p.usage();
    EXPECT_NE(u.find("--n"), std::string::npos);
    EXPECT_NE(u.find("the count"), std::string::npos);
    EXPECT_NE(u.find("default: 5"), std::string::npos);
    EXPECT_NE(u.find("--full"), std::string::npos);
    EXPECT_NE(u.find("--help"), std::string::npos);
}

} // namespace
} // namespace laoram
