/**
 * @file
 * Unit tests for the shared JSON emission helpers: escaping, number
 * rendering, and the streaming JsonWriter state machine every
 * machine-readable output (bench JSON, sampler, tracer, run reports)
 * is built on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json_writer.hh"

namespace laoram::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumber, FiniteValues)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonNumber, KeepsNanosecondScaleTimestampsExact)
{
    // Microsecond trace timestamps derived from a nanosecond clock
    // need ~13 significant digits; the default ostream precision (6)
    // would collapse them onto each other.
    EXPECT_EQ(jsonNumber(1234567890.125), "1234567890.125");
}

TEST(JsonWriter, CompactObject)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject()
        .field("a", std::uint64_t{1})
        .field("b", "x")
        .field("c", true)
        .endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject().key("xs").beginArray();
    w.value(std::uint64_t{1}).value(std::uint64_t{2});
    w.beginObject().field("y", 3).endObject();
    w.endArray().endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(os.str(), "{\"xs\":[1,2,{\"y\":3}]}");
}

TEST(JsonWriter, IndentedOutputNestsByLevel)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject().field("a", 1).endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, EscapesKeysAndStringValues)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject().field("k\"ey", "v\\al").endObject();
    EXPECT_EQ(os.str(), "{\"k\\\"ey\":\"v\\\\al\"}");
}

TEST(JsonWriter, NullAndNonFiniteDoubles)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject().key("a").null();
    w.field("b", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(os.str(), "{\"a\":null,\"b\":null}");
}

TEST(JsonWriter, DoneOnlyAfterTopLevelValueCompletes)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    EXPECT_FALSE(w.done());
    w.beginArray();
    EXPECT_FALSE(w.done());
    w.endArray();
    EXPECT_TRUE(w.done());
}

} // namespace
} // namespace laoram::util
