/**
 * @file
 * Snapshot codec tests: field-level round-trips, bounds-checked
 * reads, and the seal/unseal frame's corruption guarantees. The
 * bit-flip case is exhaustive — every single bit of a sealed frame is
 * flipped in turn and every mutant must be rejected — because the
 * frame is what stands between a damaged sidecar file and a position
 * map deserialized from garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/serde.hh"

namespace laoram::serde {
namespace {

TEST(Serde, PrimitivesRoundTrip)
{
    Serializer s;
    s.u8(0xAB);
    s.u32(0xDEADBEEF);
    s.u64(0x0123456789ABCDEFULL);
    s.f64(-1234.5678);
    s.f64(0.0);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    s.blob(payload);
    s.blob({});

    Deserializer d(s.data());
    EXPECT_EQ(d.u8(), 0xAB);
    EXPECT_EQ(d.u32(), 0xDEADBEEFu);
    EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(d.f64(), -1234.5678);
    EXPECT_DOUBLE_EQ(d.f64(), 0.0);
    EXPECT_EQ(d.blob(), payload);
    EXPECT_TRUE(d.blob().empty());
    EXPECT_TRUE(d.atEnd());
}

TEST(Serde, FieldsAreLittleEndianAndFixedWidth)
{
    // The snapshot format is an on-disk contract: pin the exact byte
    // layout so a compiler/platform change cannot silently reshape
    // existing sidecar files.
    Serializer s;
    s.u32(0x01020304);
    const std::vector<std::uint8_t> expect = {0x04, 0x03, 0x02, 0x01};
    EXPECT_EQ(s.data(), expect);
}

TEST(Serde, ReadPastEndThrows)
{
    Serializer s;
    s.u32(7);
    Deserializer d(s.data());
    EXPECT_EQ(d.u32(), 7u);
    EXPECT_THROW(d.u8(), SnapshotError);
}

TEST(Serde, BlobLengthBeyondBufferThrows)
{
    // A corrupt length prefix must not allocate/copy past the end.
    Serializer s;
    s.u64(1000); // claims 1000 bytes follow
    s.u8(1);
    Deserializer d(s.data());
    EXPECT_THROW(d.blob(), SnapshotError);
}

TEST(Serde, SealUnsealRoundTrips)
{
    const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
    const auto frame = seal(SnapshotKind::Engine, payload);
    EXPECT_EQ(unseal(SnapshotKind::Engine, frame), payload);

    // Empty payloads are legal (e.g. a trivial section).
    const auto empty = seal(SnapshotKind::ShardedManifest, {});
    EXPECT_TRUE(
        unseal(SnapshotKind::ShardedManifest, empty).empty());
}

TEST(Serde, WrongKindIsRejected)
{
    const auto frame = seal(SnapshotKind::ShardedManifest, {1, 2, 3});
    EXPECT_THROW(unseal(SnapshotKind::Engine, frame), SnapshotError);
}

TEST(Serde, EverySingleBitFlipIsRejected)
{
    const auto frame = seal(SnapshotKind::Engine, {0x55, 0xAA, 0x00});
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = frame;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(unseal(SnapshotKind::Engine, mutant),
                         SnapshotError)
                << "flip of byte " << byte << " bit " << bit
                << " was accepted";
        }
    }
}

TEST(Serde, EveryTruncationIsRejected)
{
    const auto frame = seal(SnapshotKind::Engine, {1, 2, 3, 4});
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        const std::vector<std::uint8_t> cut(frame.begin(),
                                            frame.begin() + keep);
        EXPECT_THROW(unseal(SnapshotKind::Engine, cut), SnapshotError)
            << "truncation to " << keep << " bytes was accepted";
    }
}

TEST(Serde, TrailingGarbageIsRejected)
{
    auto frame = seal(SnapshotKind::Engine, {1, 2, 3});
    frame.push_back(0);
    EXPECT_THROW(unseal(SnapshotKind::Engine, frame), SnapshotError);
}

TEST(Serde, FileRoundTripIsAtomicAndExact)
{
    const std::string path =
        ::testing::TempDir() + "laoram_serde_file_test.bin";
    std::remove(path.c_str());

    const std::vector<std::uint8_t> data =
        seal(SnapshotKind::Engine, {42, 0, 255});
    writeFileAtomic(path, data);
    EXPECT_TRUE(fileExists(path));
    EXPECT_EQ(readFile(path), data);

    // Overwrite goes through the same temp+rename path.
    const std::vector<std::uint8_t> next =
        seal(SnapshotKind::Engine, {7});
    writeFileAtomic(path, next);
    EXPECT_EQ(readFile(path), next);

    std::remove(path.c_str());
    EXPECT_FALSE(fileExists(path));
    EXPECT_THROW(readFile(path), SnapshotError);
}

// ---------------------------------------------------------------
// Crash durability: fault injection through the writeFileAtomic hook.
// The hook is a plain function pointer, so the point under test lives
// in file-scope state.

const char *failAtPoint = nullptr;
const char *crashAtPoint = nullptr;

bool
failHook(const char *point)
{
    return std::strcmp(point, failAtPoint) != 0;
}

bool
crashHook(const char *point)
{
    if (std::strcmp(point, crashAtPoint) == 0)
        ::_exit(0); // simulate the process dying at this step
    return true;
}

/** RAII hook guard so a failing assertion cannot leak the hook. */
struct HookGuard
{
    explicit HookGuard(WriteFaultHook hook)
    {
        setWriteFileAtomicFaultHook(hook);
    }
    ~HookGuard() { setWriteFileAtomicFaultHook(nullptr); }
};

/** Leftover "<base>.tmp.*" entries next to @p path. */
std::vector<std::string>
tempFilesFor(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string prefix =
        (slash == std::string::npos ? path : path.substr(slash + 1))
        + ".tmp.";
    std::vector<std::string> found;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return found;
    while (struct dirent *e = ::readdir(d)) {
        if (std::strncmp(e->d_name, prefix.c_str(), prefix.size())
            == 0)
            found.push_back(dir + "/" + e->d_name);
    }
    ::closedir(d);
    return found;
}

TEST(SerdeDurability, ForcedStepFailuresKeepOldContentsAndNoTemp)
{
    const std::string path =
        ::testing::TempDir() + "laoram_serde_fault_test.bin";
    std::remove(path.c_str());

    const auto oldData = seal(SnapshotKind::Engine, {1, 2, 3});
    const auto newData = seal(SnapshotKind::Engine, {4, 5, 6, 7});
    writeFileAtomic(path, oldData);

    // Failures up to and including the rename must leave the previous
    // snapshot untouched and clean up their temp file.
    for (const char *point : {"open", "write", "fsync-file"}) {
        SCOPED_TRACE(point);
        failAtPoint = point;
        HookGuard guard(&failHook);
        EXPECT_THROW(writeFileAtomic(path, newData), SnapshotError);
        EXPECT_EQ(readFile(path), oldData);
        EXPECT_TRUE(tempFilesFor(path).empty());
    }

    // A hook-forced "rename" failure fires after the real rename
    // already succeeded, modeling a crash where the publish reached
    // the disk but the caller never learned of it: the error must
    // still surface, no temp file remains, and the file is a
    // *complete* snapshot (the new one).
    {
        failAtPoint = "rename";
        HookGuard guard(&failHook);
        EXPECT_THROW(writeFileAtomic(path, newData), SnapshotError);
        EXPECT_TRUE(tempFilesFor(path).empty());
        EXPECT_EQ(readFile(path), newData);
    }

    // A directory-fsync failure reports (durability unproven) but
    // must not unlink the already-complete published file.
    writeFileAtomic(path, oldData);
    {
        failAtPoint = "fsync-dir";
        HookGuard guard(&failHook);
        EXPECT_THROW(writeFileAtomic(path, newData), SnapshotError);
        EXPECT_EQ(readFile(path), newData);
        EXPECT_TRUE(tempFilesFor(path).empty());
    }

    std::remove(path.c_str());
}

TEST(SerdeDurability, CrashAtAnyStepNeverYieldsTruncatedSnapshot)
{
    const std::string path =
        ::testing::TempDir() + "laoram_serde_crash_test.bin";
    std::remove(path.c_str());
    for (const auto &tmp : tempFilesFor(path))
        std::remove(tmp.c_str());

    const auto oldData = seal(SnapshotKind::Engine, {0xAA, 0xBB});
    const auto newData =
        seal(SnapshotKind::Engine,
             std::vector<std::uint8_t>(8192, 0xCD)); // multi-chunk
    writeFileAtomic(path, oldData);

    for (const char *point :
         {"open", "write", "fsync-file", "rename", "fsync-dir"}) {
        SCOPED_TRACE(point);
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: die exactly after this step. _exit in the hook
            // (or after, if writeFileAtomic unexpectedly returns)
            // skips gtest teardown entirely.
            crashAtPoint = point;
            setWriteFileAtomicFaultHook(&crashHook);
            try {
                writeFileAtomic(path, newData);
            } catch (...) {
            }
            ::_exit(1); // hook never fired: flag it
        }
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0)
            << "child never reached step " << point;

        // The invariant under test: whatever step the "crash" hit,
        // the final path frames a complete snapshot — the whole old
        // contents or the whole new contents, never a truncation.
        const auto onDisk = readFile(path);
        EXPECT_NO_THROW(unseal(SnapshotKind::Engine, onDisk));
        EXPECT_TRUE(onDisk == oldData || onDisk == newData)
            << "snapshot at " << path << " is neither complete "
            << "old nor complete new after a crash at " << point;

        // A crash cannot clean its temp file up — that is fine and
        // invisible to readers; sweep it for the next round.
        for (const auto &tmp : tempFilesFor(path))
            std::remove(tmp.c_str());
        writeFileAtomic(path, oldData); // reset for the next point
    }

    std::remove(path.c_str());
}

TEST(SerdeDurability, ConcurrentWritersToOneBasePathNeverCollide)
{
    const std::string path =
        ::testing::TempDir() + "laoram_serde_race_test.bin";
    std::remove(path.c_str());

    const auto a =
        seal(SnapshotKind::Engine, std::vector<std::uint8_t>(512, 0xA5));
    const auto b =
        seal(SnapshotKind::Engine, std::vector<std::uint8_t>(768, 0x5A));

    // The pid+sequence temp suffix keeps simultaneous writers on
    // distinct temp files: every interleaving must end with one
    // writer's *complete* frame at the path and no stray temps.
    constexpr int kRounds = 64;
    std::thread ta([&] {
        for (int i = 0; i < kRounds; ++i)
            writeFileAtomic(path, a);
    });
    std::thread tb([&] {
        for (int i = 0; i < kRounds; ++i)
            writeFileAtomic(path, b);
    });
    ta.join();
    tb.join();

    const auto onDisk = readFile(path);
    EXPECT_TRUE(onDisk == a || onDisk == b);
    unseal(SnapshotKind::Engine, onDisk); // complete, uncorrupted
    EXPECT_TRUE(tempFilesFor(path).empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace laoram::serde
