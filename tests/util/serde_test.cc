/**
 * @file
 * Snapshot codec tests: field-level round-trips, bounds-checked
 * reads, and the seal/unseal frame's corruption guarantees. The
 * bit-flip case is exhaustive — every single bit of a sealed frame is
 * flipped in turn and every mutant must be rejected — because the
 * frame is what stands between a damaged sidecar file and a position
 * map deserialized from garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/serde.hh"

namespace laoram::serde {
namespace {

TEST(Serde, PrimitivesRoundTrip)
{
    Serializer s;
    s.u8(0xAB);
    s.u32(0xDEADBEEF);
    s.u64(0x0123456789ABCDEFULL);
    s.f64(-1234.5678);
    s.f64(0.0);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    s.blob(payload);
    s.blob({});

    Deserializer d(s.data());
    EXPECT_EQ(d.u8(), 0xAB);
    EXPECT_EQ(d.u32(), 0xDEADBEEFu);
    EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(d.f64(), -1234.5678);
    EXPECT_DOUBLE_EQ(d.f64(), 0.0);
    EXPECT_EQ(d.blob(), payload);
    EXPECT_TRUE(d.blob().empty());
    EXPECT_TRUE(d.atEnd());
}

TEST(Serde, FieldsAreLittleEndianAndFixedWidth)
{
    // The snapshot format is an on-disk contract: pin the exact byte
    // layout so a compiler/platform change cannot silently reshape
    // existing sidecar files.
    Serializer s;
    s.u32(0x01020304);
    const std::vector<std::uint8_t> expect = {0x04, 0x03, 0x02, 0x01};
    EXPECT_EQ(s.data(), expect);
}

TEST(Serde, ReadPastEndThrows)
{
    Serializer s;
    s.u32(7);
    Deserializer d(s.data());
    EXPECT_EQ(d.u32(), 7u);
    EXPECT_THROW(d.u8(), SnapshotError);
}

TEST(Serde, BlobLengthBeyondBufferThrows)
{
    // A corrupt length prefix must not allocate/copy past the end.
    Serializer s;
    s.u64(1000); // claims 1000 bytes follow
    s.u8(1);
    Deserializer d(s.data());
    EXPECT_THROW(d.blob(), SnapshotError);
}

TEST(Serde, SealUnsealRoundTrips)
{
    const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
    const auto frame = seal(SnapshotKind::Engine, payload);
    EXPECT_EQ(unseal(SnapshotKind::Engine, frame), payload);

    // Empty payloads are legal (e.g. a trivial section).
    const auto empty = seal(SnapshotKind::ShardedManifest, {});
    EXPECT_TRUE(
        unseal(SnapshotKind::ShardedManifest, empty).empty());
}

TEST(Serde, WrongKindIsRejected)
{
    const auto frame = seal(SnapshotKind::ShardedManifest, {1, 2, 3});
    EXPECT_THROW(unseal(SnapshotKind::Engine, frame), SnapshotError);
}

TEST(Serde, EverySingleBitFlipIsRejected)
{
    const auto frame = seal(SnapshotKind::Engine, {0x55, 0xAA, 0x00});
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = frame;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(unseal(SnapshotKind::Engine, mutant),
                         SnapshotError)
                << "flip of byte " << byte << " bit " << bit
                << " was accepted";
        }
    }
}

TEST(Serde, EveryTruncationIsRejected)
{
    const auto frame = seal(SnapshotKind::Engine, {1, 2, 3, 4});
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        const std::vector<std::uint8_t> cut(frame.begin(),
                                            frame.begin() + keep);
        EXPECT_THROW(unseal(SnapshotKind::Engine, cut), SnapshotError)
            << "truncation to " << keep << " bytes was accepted";
    }
}

TEST(Serde, TrailingGarbageIsRejected)
{
    auto frame = seal(SnapshotKind::Engine, {1, 2, 3});
    frame.push_back(0);
    EXPECT_THROW(unseal(SnapshotKind::Engine, frame), SnapshotError);
}

TEST(Serde, FileRoundTripIsAtomicAndExact)
{
    const std::string path =
        ::testing::TempDir() + "laoram_serde_file_test.bin";
    std::remove(path.c_str());

    const std::vector<std::uint8_t> data =
        seal(SnapshotKind::Engine, {42, 0, 255});
    writeFileAtomic(path, data);
    EXPECT_TRUE(fileExists(path));
    EXPECT_EQ(readFile(path), data);

    // Overwrite goes through the same temp+rename path.
    const std::vector<std::uint8_t> next =
        seal(SnapshotKind::Engine, {7});
    writeFileAtomic(path, next);
    EXPECT_EQ(readFile(path), next);

    std::remove(path.c_str());
    EXPECT_FALSE(fileExists(path));
    EXPECT_THROW(readFile(path), SnapshotError);
}

} // namespace
} // namespace laoram::serde
