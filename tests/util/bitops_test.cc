/**
 * @file
 * Unit tests for util/bitops.hh.
 */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace laoram {
namespace {

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
    EXPECT_TRUE(isPow2(1ULL << 63));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1ULL << 33), 33u);
    EXPECT_EQ(ceilLog2((1ULL << 33) + 1), 34u);
}

TEST(Bitops, CeilPow2)
{
    EXPECT_EQ(ceilPow2(1), 1u);
    EXPECT_EQ(ceilPow2(3), 4u);
    EXPECT_EQ(ceilPow2(4), 4u);
    EXPECT_EQ(ceilPow2(1000), 1024u);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(8, 4), 2u);
}

TEST(Bitops, RoundTripPow2Log2)
{
    for (unsigned shift = 0; shift < 63; ++shift) {
        const std::uint64_t v = std::uint64_t{1} << shift;
        EXPECT_EQ(floorLog2(v), shift);
        EXPECT_EQ(ceilLog2(v), shift);
        EXPECT_EQ(ceilPow2(v), v);
    }
}

} // namespace
} // namespace laoram
