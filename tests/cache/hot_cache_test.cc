/**
 * @file
 * Unit tests of the trusted-client hot-embedding cache: the scheduled
 * access protocol (miss/fill, hit-in-place, coalesced flush), bounded
 * capacity with LRU/LFU eviction order, pinning, stats accounting,
 * and the checkpoint codec (round trip + strict config matching).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hot_cache.hh"
#include "util/serde.hh"

namespace laoram::cache {
namespace {

constexpr std::uint64_t kRow = 16;

CacheConfig
configFor(std::uint64_t rows, CachePolicy policy = CachePolicy::Lru)
{
    CacheConfig cfg;
    cfg.capacityBytes = rows * kRow;
    cfg.policy = policy;
    return cfg;
}

std::vector<std::uint8_t>
rowOf(std::uint8_t fill)
{
    return std::vector<std::uint8_t>(kRow, fill);
}

/** Run one miss-path scheduled access: begin, mutate, fill. */
void
missAccess(HotEmbeddingCache &cache, oram::BlockId id,
           std::uint8_t fill)
{
    std::vector<std::uint8_t> payload = rowOf(fill);
    ASSERT_EQ(cache.beginScheduledAccess(id, payload),
              AccessOutcome::Miss);
    cache.fill(id, payload);
}

TEST(HotCache, MissFillThenHitServesCachedBytes)
{
    HotEmbeddingCache cache(configFor(4), kRow);
    missAccess(cache, 7, 0xAB);

    // Second access: resident. The stash payload arrives stale (the
    // ORAM path read returns whatever was written back last); the
    // cache copy is authoritative and must overwrite it.
    std::vector<std::uint8_t> payload = rowOf(0x00);
    ASSERT_EQ(cache.beginScheduledAccess(7, payload),
              AccessOutcome::HitInPlace);
    EXPECT_EQ(payload, rowOf(0xAB));

    // The touched payload flows back into the row.
    payload = rowOf(0xCD);
    cache.completeScheduledAccess(7, payload);
    std::vector<std::uint8_t> again = rowOf(0x00);
    ASSERT_EQ(cache.beginScheduledAccess(7, again),
              AccessOutcome::HitInPlace);
    EXPECT_EQ(again, rowOf(0xCD));
    cache.completeScheduledAccess(7, again);

    const CacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.residentRows, 1u);
    EXPECT_EQ(st.residentBytes, kRow);
    EXPECT_DOUBLE_EQ(st.hitRate(), 2.0 / 3.0);
}

TEST(HotCache, CapacityBoundedWithLruEvictionOrder)
{
    HotEmbeddingCache cache(configFor(2, CachePolicy::Lru), kRow);
    EXPECT_EQ(cache.capacityRows(), 2u);

    missAccess(cache, 1, 1);
    missAccess(cache, 2, 2);

    // Touch 1 so 2 becomes least-recently-used.
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::HitInPlace);
    cache.completeScheduledAccess(1, payload);

    // Admitting 3 must evict 2, not 1.
    missAccess(cache, 3, 3);
    EXPECT_EQ(cache.stats().residentRows, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(2, payload),
              AccessOutcome::Miss);
    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::HitInPlace);
}

TEST(HotCache, LfuEvictsColdRowEvenIfRecentlyTouched)
{
    HotEmbeddingCache cache(configFor(2, CachePolicy::Lfu), kRow);

    missAccess(cache, 1, 1);
    missAccess(cache, 2, 2);
    // Heat up 1 (freq 3 vs freq 2 for 2).
    for (int i = 0; i < 2; ++i) {
        std::vector<std::uint8_t> payload = rowOf(0);
        ASSERT_EQ(cache.beginScheduledAccess(1, payload),
                  AccessOutcome::HitInPlace);
        cache.completeScheduledAccess(1, payload);
    }
    // Touch 2 last: under LRU it would survive; under LFU its low
    // frequency makes it the victim anyway.
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(2, payload),
              AccessOutcome::HitInPlace);
    cache.completeScheduledAccess(2, payload);

    missAccess(cache, 3, 3);
    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(2, payload),
              AccessOutcome::Miss);
    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::HitInPlace);
}

TEST(HotCache, AdmissionPinFlushesIntoScheduledAccess)
{
    HotEmbeddingCache cache(configFor(2), kRow);
    missAccess(cache, 5, 0x11);

    // Frontend fast path: apply an update to the resident row.
    const bool served = cache.tryServeAtAdmission(
        5, [](std::vector<std::uint8_t> &row) {
            row.assign(kRow, 0x22);
        });
    ASSERT_TRUE(served);
    EXPECT_EQ(cache.stats().admissionHits, 1u);

    // Non-resident id: fast path declines.
    EXPECT_FALSE(cache.tryServeAtAdmission(
        99, [](std::vector<std::uint8_t> &) { FAIL(); }));

    // The scheduled access that was already planned for 5 now flushes
    // the admitted value: payload <- row, pin released, no touchFn.
    std::vector<std::uint8_t> payload = rowOf(0x00);
    ASSERT_EQ(cache.beginScheduledAccess(5, payload),
              AccessOutcome::Flushed);
    EXPECT_EQ(payload, rowOf(0x22));
    EXPECT_EQ(cache.stats().writebackCoalesced, 1u);
}

TEST(HotCache, PinArrivingMidAccessIsNotClobberedByComplete)
{
    HotEmbeddingCache cache(configFor(2), kRow);
    missAccess(cache, 5, 0x11);

    // The serving thread begins a scheduled access for a window in
    // which 5 carries no planned ops (a pure dummy touch)...
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(5, payload),
              AccessOutcome::HitInPlace);
    EXPECT_EQ(payload, rowOf(0x11));

    // ...and an assembler thread races in with a fast-path update
    // before the serving thread completes the access.
    ASSERT_TRUE(cache.tryServeAtAdmission(
        5, [](std::vector<std::uint8_t> &row) {
            row.assign(kRow, 0x22);
        }));

    // complete must NOT overwrite the newer pinned value with the
    // stale in-flight payload: the acknowledged update has to survive
    // until its own scheduled access flushes it.
    cache.completeScheduledAccess(5, payload);
    std::vector<std::uint8_t> again = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(5, again),
              AccessOutcome::Flushed);
    EXPECT_EQ(again, rowOf(0x22));
    EXPECT_EQ(cache.stats().writebackCoalesced, 1u);
}

TEST(HotCache, PinnedRowsAreNeverEvicted)
{
    HotEmbeddingCache cache(configFor(2), kRow);
    missAccess(cache, 1, 1);
    missAccess(cache, 2, 2);

    // Pin the LRU victim candidate (1).
    ASSERT_TRUE(cache.tryServeAtAdmission(
        1, [](std::vector<std::uint8_t> &row) { row[0] = 0xFF; }));

    // Admitting 3 must skip pinned 1 and evict 2 instead.
    missAccess(cache, 3, 3);
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::Flushed);
    EXPECT_EQ(payload[0], 0xFF);
    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(2, payload),
              AccessOutcome::Miss);
}

TEST(HotCache, SaveRestoreRoundTripsRowsAndCounters)
{
    HotEmbeddingCache cache(configFor(4, CachePolicy::Lfu), kRow);
    missAccess(cache, 3, 0x33);
    missAccess(cache, 9, 0x99);
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(9, payload),
              AccessOutcome::HitInPlace);
    cache.completeScheduledAccess(9, payload);

    serde::Serializer s;
    cache.save(s);
    const std::vector<std::uint8_t> bytes = s.take();

    HotEmbeddingCache restored(configFor(4, CachePolicy::Lfu), kRow);
    serde::Deserializer d(bytes);
    restored.restore(d);
    EXPECT_TRUE(d.atEnd());

    const CacheStats a = cache.stats();
    const CacheStats b = restored.stats();
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.residentRows, b.residentRows);
    EXPECT_EQ(a.residentBytes, b.residentBytes);

    // Restored rows serve hits with the same bytes (9 was rewritten).
    payload = rowOf(0);
    ASSERT_EQ(restored.beginScheduledAccess(3, payload),
              AccessOutcome::HitInPlace);
    EXPECT_EQ(payload, rowOf(0x33));
}

TEST(HotCache, RestoreRejectsMismatchedConfig)
{
    HotEmbeddingCache cache(configFor(4, CachePolicy::Lru), kRow);
    missAccess(cache, 1, 1);
    serde::Serializer s;
    cache.save(s);
    const std::vector<std::uint8_t> bytes = s.take();

    {
        HotEmbeddingCache wrongPolicy(configFor(4, CachePolicy::Lfu),
                                      kRow);
        serde::Deserializer d(bytes);
        EXPECT_THROW(wrongPolicy.restore(d), serde::SnapshotError);
    }
    {
        HotEmbeddingCache wrongCapacity(configFor(2, CachePolicy::Lru),
                                        kRow);
        serde::Deserializer d(bytes);
        EXPECT_THROW(wrongCapacity.restore(d), serde::SnapshotError);
    }
    {
        HotEmbeddingCache wrongRow(
            CacheConfig{4 * 2 * kRow, CachePolicy::Lru}, 2 * kRow);
        serde::Deserializer d(bytes);
        EXPECT_THROW(wrongRow.restore(d), serde::SnapshotError);
    }
}

TEST(HotCache, ClearDropsRowsButKeepsCounters)
{
    HotEmbeddingCache cache(configFor(4), kRow);
    missAccess(cache, 1, 1);
    std::vector<std::uint8_t> payload = rowOf(0);
    ASSERT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::HitInPlace);
    cache.completeScheduledAccess(1, payload);

    cache.clear();
    EXPECT_EQ(cache.stats().residentRows, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);
    payload = rowOf(0);
    EXPECT_EQ(cache.beginScheduledAccess(1, payload),
              AccessOutcome::Miss);
}

TEST(HotCacheDeathTest, ClearWithPinnedWritebackPanics)
{
    HotEmbeddingCache cache(configFor(2), kRow);
    missAccess(cache, 1, 1);
    ASSERT_TRUE(cache.tryServeAtAdmission(
        1, [](std::vector<std::uint8_t> &row) { row[0] = 0xFF; }));
    // Dropping the row would discard the acknowledged deferred
    // write-back it holds — same quiesced-boundary contract as save().
    EXPECT_DEATH(cache.clear(), "deferred write-back");
}

TEST(HotCache, PolicyNamesParseAndPrint)
{
    EXPECT_STREQ(policyName(CachePolicy::Lru), "lru");
    EXPECT_STREQ(policyName(CachePolicy::Lfu), "lfu");
    CachePolicy p = CachePolicy::Lru;
    EXPECT_TRUE(parsePolicy("lfu", &p));
    EXPECT_EQ(p, CachePolicy::Lfu);
    EXPECT_TRUE(parsePolicy("LRU", &p));
    EXPECT_EQ(p, CachePolicy::Lru);
    EXPECT_FALSE(parsePolicy("arc", &p));
}

TEST(HotCacheStats, AccumulateAndDelta)
{
    CacheStats a;
    a.hits = 10;
    a.misses = 5;
    a.evictions = 2;
    a.residentRows = 3;
    a.capacityRows = 8;
    CacheStats b;
    b.hits = 1;
    b.misses = 1;
    b.admissionHits = 4;
    b.residentRows = 2;
    b.capacityRows = 8;

    CacheStats sum = a;
    sum.accumulate(b);
    EXPECT_EQ(sum.hits, 11u);
    EXPECT_EQ(sum.misses, 6u);
    EXPECT_EQ(sum.admissionHits, 4u);
    EXPECT_EQ(sum.residentRows, 5u);
    EXPECT_EQ(sum.capacityRows, 16u);

    CacheStats start;
    start.hits = 4;
    start.misses = 5;
    const CacheStats delta = a.deltaFrom(start);
    EXPECT_EQ(delta.hits, 6u);
    EXPECT_EQ(delta.misses, 0u);
    EXPECT_EQ(delta.residentRows, 3u); // levels keep end values
}

} // namespace
} // namespace laoram::cache
