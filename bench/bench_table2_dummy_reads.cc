/**
 * @file
 * Reproduces paper Table II: average dummy reads per data access for
 * {Fat/S8, Fat/S4, Normal/S8, Normal/S4} on Permutation, Gaussian,
 * Kaggle and XNLI. Background eviction triggers at 500 stash entries
 * and drains to 50, exactly the paper's §VIII-E setup.
 *
 * Paper values: Permutation Fat/S8 0.35, Fat/S4 0.14, Normal/S8 1.19,
 * Normal/S4 0.57; Gaussian 0.24/0.10/0.65/0.46; Kaggle
 * 0.025/0/0.19/0.053; XNLI 0.009/0/0.16/0.
 */

#include <iostream>

#include "common/harness.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;
using workload::DatasetKind;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table2_dummy_reads",
                   "Reproduces Table II (dummy reads per access)");
    auto full = args.addFlag("full", "paper-scale entry counts");
    auto epochs = args.addUint("epochs", "training epochs per run", 6);
    auto seed = args.addUint("seed", "experiment seed", 11);
    args.parse(argc, argv);

    bench::printHeader(
        "Table II — average dummy reads per data access",
        "eviction threshold 500 -> drain to 50 (paper Section VIII-E)");

    const bench::EngineSpec specs[] = {
        {bench::EngineSpec::Kind::Fat, 8},
        {bench::EngineSpec::Kind::Fat, 4},
        {bench::EngineSpec::Kind::Normal, 8},
        {bench::EngineSpec::Kind::Normal, 4},
    };
    const char *paper[4][4] = {
        // Permutation, Gaussian, Kaggle, XNLI
        {"0.35", "0.24", "0.025", "0.009"}, // Fat/S8
        {"0.14", "0.10", "0", "0"},         // Fat/S4
        {"1.19", "0.65", "0.19", "0.16"},   // Normal/S8
        {"0.57", "0.46", "0.053", "0"},     // Normal/S4
    };
    const DatasetKind kinds[] = {
        DatasetKind::Permutation,
        DatasetKind::Gaussian,
        DatasetKind::Kaggle,
        DatasetKind::Xnli,
    };

    TextTable table({"config", "Permutation", "Gaussian", "Kaggle",
                     "XNLI"});
    for (int s = 0; s < 4; ++s) {
        std::vector<std::string> row{specs[s].label()};
        for (int k = 0; k < 4; ++k) {
            const bench::DatasetScale scale =
                bench::scaleFor(kinds[k], *full);
            const workload::Trace trace = bench::makeEpochedTrace(
                kinds[k], scale.numBlocks, scale.accesses, *epochs,
                *seed);
            bench::HarnessConfig hcfg;
            hcfg.blockBytes = scale.blockBytes;
            hcfg.seed = *seed;
            const bench::RunResult r =
                bench::runSpec(specs[s], trace, hcfg);
            row.push_back(
                TextTable::cell(r.counters.dummyReadsPerAccess(), 3)
                + " (" + paper[s][k] + ")");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);

    std::cout << "\npaper shape check: fat cuts dummy reads several-"
                 "fold at equal S; S8 needs\nmore dummies than S4; "
                 "real traces (Kaggle/XNLI) need far fewer than the\n"
                 "permutation worst case.\n";
    return 0;
}
