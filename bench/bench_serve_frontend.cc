/**
 * @file
 * Online serving frontend sweep: sessions x shards, measuring
 * end-to-end request latency percentiles (p50/p99/p99.9) and
 * throughput of the coalescer + sharded pipeline serving path.
 *
 * Each cell runs N closed-ish-loop client threads (every client keeps
 * a small window of batches in flight) against a sharded engine; a
 * flush ticker cuts partial windows during lulls. Latency is measured
 * per operation from submit to written-back (the frontend's streaming
 * histogram), so the percentiles include admission queueing and
 * window coalescing — what an online client actually sees.
 *
 * Modes:
 *   default  CI-sized sweep (seconds)
 *   --smoke  one small cell (>= 4 sessions over >= 2 shards) for the
 *            CI regression gate
 *
 * Emits BENCH_serve_frontend.json for cross-PR tracking.
 */

#include <atomic>
#include <chrono>
#include <deque>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "serve/frontend.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

struct CellResult
{
    std::uint64_t sessions = 0;
    std::uint64_t shards = 0;
    LatencyReport latency;
    double wallMs = 0.0;
    double opsPerSec = 0.0;
    std::uint64_t windows = 0;
};

CellResult
runCell(std::uint64_t sessions, std::uint64_t shards,
        std::uint64_t blocks, std::uint64_t batchesPerSession,
        std::uint64_t opsPerBatch, std::uint64_t window,
        std::uint64_t seed)
{
    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = blocks;
    cfg.engine.base.payloadBytes = 64;
    cfg.engine.base.seed = seed;
    cfg.engine.superblockSize = 4;
    cfg.numShards = static_cast<std::uint32_t>(shards);
    cfg.pipeline.windowAccesses = window;
    cfg.pipeline.mode = core::PipelineMode::Concurrent;
    core::ShardedLaoram engine(cfg);

    serve::ServeFrontend frontend(engine);
    frontend.start();

    std::atomic<bool> running{true};
    std::thread flusher([&] {
        while (running.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            frontend.flush();
        }
    });

    std::vector<std::thread> clients;
    for (std::uint64_t c = 0; c < sessions; ++c) {
        clients.emplace_back([&, c] {
            serve::Session session = frontend.session();
            Rng rng(seed * 1000 + c);
            // Keep up to 4 batches in flight per session: enough
            // pipelining to fill windows, bounded so latency still
            // reflects a client waiting on its answers.
            std::deque<std::future<serve::BatchResult>> inflight;
            for (std::uint64_t b = 0; b < batchesPerSession; ++b) {
                serve::Batch batch;
                for (std::uint64_t i = 0; i < opsPerBatch; ++i) {
                    const core::BlockId id =
                        rng.nextBool(0.5)
                            ? rng.nextBounded(blocks / 16 + 1)
                            : rng.nextBounded(blocks);
                    if (rng.nextBool(0.25))
                        batch.ops.push_back(serve::Op::update(
                            id, std::vector<std::uint8_t>(
                                    64,
                                    static_cast<std::uint8_t>(b))));
                    else
                        batch.ops.push_back(serve::Op::lookup(id));
                }
                inflight.push_back(session.submit(std::move(batch)));
                while (inflight.size() > 4) {
                    inflight.front().get();
                    inflight.pop_front();
                }
            }
            while (!inflight.empty()) {
                inflight.front().get();
                inflight.pop_front();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    running.store(false, std::memory_order_relaxed);
    flusher.join();

    const core::ShardedPipelineReport rep = frontend.stop();

    CellResult r;
    r.sessions = sessions;
    r.shards = shards;
    r.latency = rep.aggregate.latency;
    r.wallMs = rep.aggregate.wallTotalNs / 1e6;
    r.opsPerSec = rep.aggregate.wallTotalNs > 0.0
        ? static_cast<double>(r.latency.requests)
              / (rep.aggregate.wallTotalNs / 1e9)
        : 0.0;
    r.windows = rep.aggregate.windows;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_serve_frontend",
                   "Online serving latency/throughput: sessions x "
                   "shards sweep");
    auto blocks = args.addUint("blocks", "key-space size", 1 << 12);
    auto batches = args.addUint("batches", "batches per session", 48);
    auto batchOps = args.addUint("batch-ops",
                                 "operations per batch", 32);
    auto window = args.addUint("window",
                               "look-ahead window (operations)", 64);
    auto seed = args.addUint("seed", "traffic seed", 17);
    auto smoke = args.addFlag("smoke",
                              "single small cell (CI regression gate)");
    args.parse(argc, argv);

    struct Cell
    {
        std::uint64_t sessions, shards;
    };
    std::vector<Cell> cells;
    std::uint64_t nBlocks = *blocks;
    std::uint64_t nBatches = *batches;
    if (*smoke) {
        nBlocks = 1 << 10;
        nBatches = 12;
        cells = {{4, 2}};
    } else {
        cells = {{1, 2}, {4, 2}, {8, 2}, {4, 4}, {8, 4}};
    }

    bench::printHeader(
        "Online serving frontend — sessions x shards",
        "closed-ish-loop clients; latency is submit-to-written-back "
        "per operation");
    std::cout << nBlocks << " keys, " << nBatches
              << " batches/session x " << *batchOps
              << " ops, window " << *window << "\n\n";

    bench::BenchJson json("serve_frontend");
    json.add("blocks", nBlocks);
    json.add("batches_per_session", nBatches);
    json.add("ops_per_batch", *batchOps);
    json.add("window", *window);

    std::cout << "  sessions shards      ops   kops/s   p50 us   "
                 "p99 us   p99.9 us   max us\n";
    for (const Cell &cell : cells) {
        const CellResult r =
            runCell(cell.sessions, cell.shards, nBlocks, nBatches,
                    *batchOps, *window, *seed);
        std::cout << std::fixed << std::setprecision(1) << "  "
                  << std::setw(8) << r.sessions << std::setw(7)
                  << r.shards << std::setw(9) << r.latency.requests
                  << std::setw(9) << r.opsPerSec / 1e3 << std::setw(9)
                  << r.latency.p50Ns / 1e3 << std::setw(9)
                  << r.latency.p99Ns / 1e3 << std::setw(11)
                  << r.latency.p999Ns / 1e3 << std::setw(9)
                  << r.latency.maxNs / 1e3 << "\n";

        const std::string prefix = "s" + std::to_string(r.sessions)
                                   + "x"
                                   + std::to_string(r.shards);
        json.add(prefix + ".ops", r.latency.requests);
        json.add(prefix + ".wall_ms", r.wallMs);
        json.add(prefix + ".ops_per_sec", r.opsPerSec);
        json.add(prefix + ".windows", r.windows);
        json.add(prefix + ".p50_ns", r.latency.p50Ns);
        json.add(prefix + ".p99_ns", r.latency.p99Ns);
        json.add(prefix + ".p999_ns", r.latency.p999Ns);
        json.add(prefix + ".max_ns", r.latency.maxNs);
    }

    std::cout
        << "\nlatency includes admission queueing and window "
           "coalescing: more sessions\nfill windows faster (less "
           "flush-ticker padding), more shards serve them\nin "
           "parallel — the online version of the paper's "
           "preprocess-while-serving\noverlap.\n";
    json.write();
    return 0;
}
