/**
 * @file
 * Reproduces paper Fig. 2: the first 10,000 embedding accesses of the
 * (Kaggle-like) DLRM trace. The paper plots an index-vs-time scatter;
 * this bench emits the same points as CSV plus the summary statistics
 * that define the figure's visual structure — a mostly uniform cloud
 * with a thin, heavily reused band at the bottom.
 */

#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "common/harness.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/kaggle_synth.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig2_trace",
                   "Reproduces Fig. 2 (Kaggle access scatter)");
    auto accesses = args.addUint("accesses", "trace length", 10000);
    auto entries =
        args.addUint("entries", "embedding entries", 10131227);
    auto seed = args.addUint("seed", "trace seed", 1);
    auto csv = args.addFlag("csv", "dump the raw scatter points");
    args.parse(argc, argv);

    bench::printHeader("Fig. 2 — 10,000 accesses to the DLRM (Kaggle) "
                       "embedding table",
                       "synthesized trace; see DESIGN.md for the "
                       "substitution rationale");

    workload::KaggleParams kp;
    kp.numBlocks = *entries;
    kp.accesses = *accesses;
    kp.seed = *seed;
    const workload::Trace trace = workload::makeKaggleTrace(kp);

    // Structure metrics matching the figure's description.
    std::unordered_map<workload::BlockId, std::uint64_t> freq;
    for (auto id : trace.accesses)
        ++freq[id];
    std::uint64_t in_band = 0, repeated_accesses = 0;
    for (auto id : trace.accesses)
        in_band += (id < kp.hotSetSize);
    for (const auto &[id, n] : freq)
        if (n > 1)
            repeated_accesses += n;

    TextTable table({"metric", "value", "paper expectation"});
    table.addRow({"accesses", TextTable::cell(trace.size()), "10000"});
    table.addRow({"unique indices",
                  TextTable::cell(trace.uniqueCount()),
                  "close to 10000 (mostly random)"});
    table.addRow(
        {"unique fraction",
         TextTable::cell(static_cast<double>(trace.uniqueCount())
                             / static_cast<double>(trace.size()),
                         3),
         "high: 'most accesses are random'"});
    table.addRow({"hot-band accesses (idx < "
                      + std::to_string(kp.hotSetSize) + ")",
                  TextTable::cell(in_band),
                  "thin dark band at the bottom"});
    table.addRow(
        {"hot-band mass",
         TextTable::cell(static_cast<double>(in_band)
                             / static_cast<double>(trace.size()),
                         3),
         "small fraction of total"});
    table.addRow(
        {"accesses to repeated indices",
         TextTable::cell(repeated_accesses),
         "the band supplies nearly all repeats"});
    table.print(std::cout);

    if (*csv) {
        std::cout << "\nscatter CSV (sample_index,table_index):\n";
        for (std::uint64_t i = 0; i < trace.size(); ++i)
            std::cout << i << "," << trace.accesses[i] << "\n";
    } else {
        std::cout << "\n(run with --csv to dump the scatter points "
                     "for plotting)\n";
    }
    return 0;
}
