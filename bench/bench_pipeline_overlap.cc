/**
 * @file
 * Measured two-stage pipeline overlap (paper §VIII-A).
 *
 * Runs the same trace through the Simulated pipeline (analytic cost
 * model) and the Concurrent pipeline (preprocessor pool + reorder
 * window + serving thread), and reports the modeled *and* the
 * measured wall-clock prepHiddenFraction side by side. When ORAM
 * serving dominates — the paper's regime — the measured fraction
 * approaches 1.0: preprocessing never stalls the serving thread, i.e.
 * it is genuinely off the critical path, not just modeled as such.
 *
 * A queue-depth sweep shows backpressure at work: even depth 1
 * (strict lock-step hand-off) completes with identical ORAM
 * behaviour, deeper queues only smooth stage jitter.
 *
 * A preprocessor-pool sweep (P = 1, 2, 4 prep threads through the
 * deterministic reorder stage) shows what happens when stage 1 stops
 * being negligible — large superblocks (or --encrypt making windows
 * heavier) push prep time toward serve time, and the pool buys the
 * hidden fraction back. Per-prep-thread utilization and the reorder
 * (head-of-line) stall land in the JSON so prep-bound regressions are
 * trackable.
 *
 * A final multi-prep × remote sweep reruns the pool sweep with the
 * tree behind the remote-KV backend at a shaped RPC latency
 * (--remote-latency-us): serve-side stalls are now genuine network
 * waits, and the sweep shows the prep pool hiding stage-1 work behind
 * them — at a latency where P=1 leaves serve stalls, P>=2 raises the
 * measured hidden fraction. The whole remote sweep lands in the JSON
 * (remote.prepN.* keys) so the regime is tracked across PRs.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "core/pipeline.hh"
#include "storage/slot_backend.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

using bench::randomTrace;

core::LaoramConfig
engineConfig(std::uint64_t blocks, std::uint64_t superblock,
             std::uint64_t seed, bool encrypt,
             const storage::StorageConfig &store = {})
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = seed;
    cfg.base.encrypt = encrypt;
    if (encrypt)
        cfg.base.payloadBytes = 64;
    cfg.superblockSize = superblock;
    cfg.base.storage = store;
    return cfg;
}

double
meanUtilization(const core::PipelineReport &rep)
{
    if (rep.prepThreadUtilization.empty())
        return 0.0;
    double sum = 0.0;
    for (double u : rep.prepThreadUtilization)
        sum += u;
    return sum / static_cast<double>(rep.prepThreadUtilization.size());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_pipeline_overlap",
                   "Measured vs modeled preprocessing overlap of the "
                   "two-stage pipeline");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 14);
    auto accesses = args.addUint("accesses", "trace length", 1 << 16);
    auto window = args.addUint("window", "pipeline window accesses",
                               2048);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto seed = args.addUint("seed", "trace + engine seed", 1);
    auto encrypt = args.addFlag(
        "encrypt", "ChaCha20 at rest (heavier serve + prep windows)");
    auto prepLoad = args.addUint(
        "prep-load",
        "stage-1 ns per access (emulated sample decrypt/parse; 0 = "
        "auto-calibrate the pool sweep to the prep-bound regime)",
        0);
    auto remoteLatencyUs = args.addUint(
        "remote-latency-us",
        "shaped RPC latency of the multi-prep x remote sweep", 40);
    args.parse(argc, argv);

    bench::printHeader(
        "Two-stage pipeline overlap (paper §VIII-A)",
        "stage 1 = look-ahead preprocessing thread, stage 2 = ORAM "
        "serving thread");

    const auto trace = randomTrace(*blocks, *accesses, *seed + 100);
    std::cout << *accesses << " accesses over " << *blocks
              << " blocks, window " << *window << ", S=" << *superblock
              << "\n\n";

    // --- Modeled baseline: the analytic cost-model pipeline. ---
    core::PipelineConfig simPc;
    simPc.windowAccesses = *window;
    simPc.mode = core::PipelineMode::Simulated;
    core::Laoram simEngine(
        engineConfig(*blocks, *superblock, *seed, *encrypt));
    core::BatchPipeline simPipe(simEngine, simPc);
    const auto simRep = simPipe.run(trace);

    std::cout << std::fixed << std::setprecision(3)
              << "modeled  : serial " << simRep.serialNs / 1e6
              << " ms, pipelined " << simRep.pipelinedNs / 1e6
              << " ms, prep hidden "
              << simRep.prepHiddenFraction * 100.0 << "%\n\n";

    // --- Measured: real threads, queue-depth sweep. The io column is
    // the serving thread's *measured* storage-backend time — its
    // genuine I/O stall component, reported first-class next to the
    // queue stalls the prep stage is responsible for. ---
    bench::BenchJson json("pipeline_overlap");
    json.add("accesses", *accesses);
    json.add("modeled.prep_hidden_fraction",
             simRep.prepHiddenFraction);
    std::cout << "concurrent (measured wall clock):\n"
              << "  depth   wall ms   prep ms   serve ms   stall ms   "
                 "io ms   io/serve   prep hidden\n";
    double lastServeNs = 0.0;
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
        core::PipelineConfig pc = simPc;
        pc.mode = core::PipelineMode::Concurrent;
        pc.queueDepth = depth;
        core::Laoram engine(
            engineConfig(*blocks, *superblock, *seed, *encrypt));
        core::BatchPipeline pipe(engine, pc);
        const auto rep = pipe.run(trace);

        std::cout << "  " << std::setw(5) << depth << std::setw(10)
                  << rep.wallTotalNs / 1e6 << std::setw(10)
                  << rep.wallPrepNs / 1e6 << std::setw(11)
                  << rep.wallServeNs / 1e6 << std::setw(11)
                  << rep.wallStallNs / 1e6 << std::setw(8)
                  << rep.wallIoNs / 1e6 << std::setw(10)
                  << rep.ioServeFraction * 100.0 << "%"
                  << std::setw(13)
                  << rep.measuredPrepHiddenFraction * 100.0 << "%\n";

        const std::string tag = "depth" + std::to_string(depth);
        json.add(tag + ".wall_ms", rep.wallTotalNs / 1e6);
        json.add(tag + ".stall_ms", rep.wallStallNs / 1e6);
        json.add(tag + ".io_stall_ms", rep.wallIoNs / 1e6);
        json.add(tag + ".io_serve_fraction", rep.ioServeFraction);
        json.add(tag + ".measured_prep_hidden",
                 rep.measuredPrepHiddenFraction);
        lastServeNs = rep.wallServeNs;
    }

    // --- Preprocessor-pool sweep: P prep threads feeding the
    // deterministic reorder stage at a fixed depth. Stage 1 carries
    // the paper's sample decrypt/parse cost (--prep-load, or
    // auto-calibrated to ~2x the measured serve rate so stage 1 is
    // genuinely the bottleneck at P=1); the hidden fraction and
    // throughput then recover as P grows, and per-thread utilization
    // dropping shows when the pool outruns the serving thread. ---
    double loadNs = static_cast<double>(*prepLoad);
    if (loadNs == 0.0) {
        // lastServeNs is the depth-8 run's serve time; 2x its
        // per-access rate makes P=1 prep-bound on any host (margin
        // for the spinning prep thread slowing serving down).
        loadNs = 2.0 * lastServeNs / static_cast<double>(*accesses);
    }
    json.add("pool.prep_load_ns_per_access", loadNs);
    std::cout << "\npreprocessor pool (depth 4, stage-1 load "
              << loadNs << " ns/access):\n"
              << "  preps   wall ms   acc/wallMs   stall ms   "
                 "reorder ms   prep util   prep hidden\n";
    for (const std::size_t preps : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
        core::PipelineConfig pc = simPc;
        pc.mode = core::PipelineMode::Concurrent;
        pc.queueDepth = 4;
        pc.prepThreads = preps;
        pc.prepLoadNsPerAccess = loadNs;
        core::Laoram engine(
            engineConfig(*blocks, *superblock, *seed, *encrypt));
        core::BatchPipeline pipe(engine, pc);
        const auto rep = pipe.run(trace);

        const double accPerMs = static_cast<double>(*accesses)
                                / (rep.wallTotalNs / 1e6);
        std::cout << "  " << std::setw(5) << preps << std::setw(10)
                  << rep.wallTotalNs / 1e6 << std::setw(13) << accPerMs
                  << std::setw(11) << rep.wallStallNs / 1e6
                  << std::setw(13) << rep.wallReorderStallNs / 1e6
                  << std::setw(11) << meanUtilization(rep) * 100.0
                  << "%" << std::setw(13)
                  << rep.measuredPrepHiddenFraction * 100.0 << "%\n";

        const std::string tag = "prep" + std::to_string(preps);
        json.add(tag + ".wall_ms", rep.wallTotalNs / 1e6);
        json.add(tag + ".acc_per_wall_ms", accPerMs);
        json.add(tag + ".stall_ms", rep.wallStallNs / 1e6);
        json.add(tag + ".reorder_stall_ms",
                 rep.wallReorderStallNs / 1e6);
        json.add(tag + ".prep_util_mean", meanUtilization(rep));
        json.add(tag + ".measured_prep_hidden",
                 rep.measuredPrepHiddenFraction);
        for (std::size_t t = 0; t < rep.prepThreadUtilization.size();
             ++t) {
            json.add(tag + ".util_thread" + std::to_string(t),
                     rep.prepThreadUtilization[t]);
        }
    }

    // --- Multi-prep × remote sweep: the pool sweep again, but with
    // the tree behind the remote-KV backend at a shaped RPC latency.
    // Serving now genuinely waits on the network (the io column), so
    // this is the regime the ROADMAP crossed PR 3 and PR 4 for: at a
    // latency where P=1 leaves serve stalls, P>=2 hides the stage-1
    // load behind the RPC waits and the hidden fraction recovers. ---
    storage::StorageConfig rstore;
    rstore.kind = storage::BackendKind::Remote;
    rstore.remote.latencyNs =
        static_cast<std::int64_t>(*remoteLatencyUs) * 1000;
    json.add("remote.latency_us", *remoteLatencyUs);

    // Calibrate stage-1 load against the *remote* serve rate (slower
    // than DRAM), measured at P=1 with no load: 2x makes P=1
    // prep-bound on any host, exactly like the pool sweep above.
    double remoteServeNs = 0.0;
    {
        core::PipelineConfig pc = simPc;
        pc.mode = core::PipelineMode::Concurrent;
        pc.queueDepth = 4;
        core::Laoram engine(engineConfig(*blocks, *superblock, *seed,
                                         *encrypt, rstore));
        core::BatchPipeline pipe(engine, pc);
        remoteServeNs = pipe.run(trace).wallServeNs;
    }
    const double remoteLoadNs =
        2.0 * remoteServeNs / static_cast<double>(*accesses);
    json.add("remote.prep_load_ns_per_access", remoteLoadNs);

    std::cout << "\nmulti-prep x remote KV (RPC latency "
              << *remoteLatencyUs << " us, depth 4, stage-1 load "
              << remoteLoadNs << " ns/access):\n"
              << "  preps   wall ms   acc/wallMs   stall ms      io ms"
                 "   io/serve   prep hidden\n";
    for (const std::size_t preps : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
        core::PipelineConfig pc = simPc;
        pc.mode = core::PipelineMode::Concurrent;
        pc.queueDepth = 4;
        pc.prepThreads = preps;
        pc.prepLoadNsPerAccess = remoteLoadNs;
        core::Laoram engine(engineConfig(*blocks, *superblock, *seed,
                                         *encrypt, rstore));
        core::BatchPipeline pipe(engine, pc);
        const auto rep = pipe.run(trace);

        const double accPerMs = static_cast<double>(*accesses)
                                / (rep.wallTotalNs / 1e6);
        std::cout << "  " << std::setw(5) << preps << std::setw(10)
                  << rep.wallTotalNs / 1e6 << std::setw(13) << accPerMs
                  << std::setw(11) << rep.wallStallNs / 1e6
                  << std::setw(11) << rep.wallIoNs / 1e6
                  << std::setw(10) << rep.ioServeFraction * 100.0
                  << "%" << std::setw(13)
                  << rep.measuredPrepHiddenFraction * 100.0 << "%\n";

        const std::string tag = "remote.prep" + std::to_string(preps);
        json.add(tag + ".wall_ms", rep.wallTotalNs / 1e6);
        json.add(tag + ".acc_per_wall_ms", accPerMs);
        json.add(tag + ".stall_ms", rep.wallStallNs / 1e6);
        json.add(tag + ".io_stall_ms", rep.wallIoNs / 1e6);
        json.add(tag + ".io_serve_fraction", rep.ioServeFraction);
        json.add(tag + ".prep_util_mean", meanUtilization(rep));
        json.add(tag + ".measured_prep_hidden",
                 rep.measuredPrepHiddenFraction);
    }
    json.write();

    std::cout << "\nORAM serving dominates preprocessing, so the "
                 "measured hidden fraction\napproaches 100%: the "
                 "serving thread never waits for stage 1 — the\n"
                 "paper's \"preprocessing is not on the critical "
                 "path\", now with real\nthreads instead of a cost "
                 "model.\n";
    return 0;
}
