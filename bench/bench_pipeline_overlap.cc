/**
 * @file
 * Measured two-stage pipeline overlap (paper §VIII-A).
 *
 * Runs the same trace through the Simulated pipeline (analytic cost
 * model) and the Concurrent pipeline (real preprocessor thread +
 * bounded queue + serving thread), and reports the modeled *and* the
 * measured wall-clock prepHiddenFraction side by side. When ORAM
 * serving dominates — the paper's regime — the measured fraction
 * approaches 1.0: preprocessing never stalls the serving thread, i.e.
 * it is genuinely off the critical path, not just modeled as such.
 *
 * A queue-depth sweep shows backpressure at work: even depth 1
 * (strict lock-step hand-off) completes with identical ORAM
 * behaviour, deeper queues only smooth stage jitter.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "core/pipeline.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

using bench::randomTrace;

core::LaoramConfig
engineConfig(std::uint64_t blocks, std::uint64_t superblock,
             std::uint64_t seed)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = seed;
    cfg.superblockSize = superblock;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_pipeline_overlap",
                   "Measured vs modeled preprocessing overlap of the "
                   "two-stage pipeline");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 14);
    auto accesses = args.addUint("accesses", "trace length", 1 << 16);
    auto window = args.addUint("window", "pipeline window accesses",
                               2048);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto seed = args.addUint("seed", "trace + engine seed", 1);
    args.parse(argc, argv);

    bench::printHeader(
        "Two-stage pipeline overlap (paper §VIII-A)",
        "stage 1 = look-ahead preprocessing thread, stage 2 = ORAM "
        "serving thread");

    const auto trace = randomTrace(*blocks, *accesses, *seed + 100);
    std::cout << *accesses << " accesses over " << *blocks
              << " blocks, window " << *window << ", S=" << *superblock
              << "\n\n";

    // --- Modeled baseline: the analytic cost-model pipeline. ---
    core::PipelineConfig simPc;
    simPc.windowAccesses = *window;
    simPc.mode = core::PipelineMode::Simulated;
    core::Laoram simEngine(engineConfig(*blocks, *superblock, *seed));
    core::BatchPipeline simPipe(simEngine, simPc);
    const auto simRep = simPipe.run(trace);

    std::cout << std::fixed << std::setprecision(3)
              << "modeled  : serial " << simRep.serialNs / 1e6
              << " ms, pipelined " << simRep.pipelinedNs / 1e6
              << " ms, prep hidden "
              << simRep.prepHiddenFraction * 100.0 << "%\n\n";

    // --- Measured: real threads, queue-depth sweep. The io column is
    // the serving thread's *measured* storage-backend time — its
    // genuine I/O stall component, reported first-class next to the
    // queue stalls the prep stage is responsible for. ---
    bench::BenchJson json("pipeline_overlap");
    json.add("accesses", *accesses);
    json.add("modeled.prep_hidden_fraction",
             simRep.prepHiddenFraction);
    std::cout << "concurrent (measured wall clock):\n"
              << "  depth   wall ms   prep ms   serve ms   stall ms   "
                 "io ms   io/serve   prep hidden\n";
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
        core::PipelineConfig pc = simPc;
        pc.mode = core::PipelineMode::Concurrent;
        pc.queueDepth = depth;
        core::Laoram engine(engineConfig(*blocks, *superblock, *seed));
        core::BatchPipeline pipe(engine, pc);
        const auto rep = pipe.run(trace);

        std::cout << "  " << std::setw(5) << depth << std::setw(10)
                  << rep.wallTotalNs / 1e6 << std::setw(10)
                  << rep.wallPrepNs / 1e6 << std::setw(11)
                  << rep.wallServeNs / 1e6 << std::setw(11)
                  << rep.wallStallNs / 1e6 << std::setw(8)
                  << rep.wallIoNs / 1e6 << std::setw(10)
                  << rep.ioServeFraction * 100.0 << "%"
                  << std::setw(13)
                  << rep.measuredPrepHiddenFraction * 100.0 << "%\n";

        const std::string tag = "depth" + std::to_string(depth);
        json.add(tag + ".wall_ms", rep.wallTotalNs / 1e6);
        json.add(tag + ".stall_ms", rep.wallStallNs / 1e6);
        json.add(tag + ".io_stall_ms", rep.wallIoNs / 1e6);
        json.add(tag + ".io_serve_fraction", rep.ioServeFraction);
        json.add(tag + ".measured_prep_hidden",
                 rep.measuredPrepHiddenFraction);
    }
    json.write();

    std::cout << "\nORAM serving dominates preprocessing, so the "
                 "measured hidden fraction\napproaches 100%: the "
                 "serving thread never waits for stage 1 — the\n"
                 "paper's \"preprocessing is not on the critical "
                 "path\", now with real\nthreads instead of a cost "
                 "model.\n";
    return 0;
}
