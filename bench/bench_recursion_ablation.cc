/**
 * @file
 * Ablation: flat client-resident position map (the paper's §III
 * design — the map lives in trainer-GPU HBM) versus the classic
 * recursive position map (PathORAM §6).
 *
 * Quantifies the trade the paper makes implicitly: recursion shrinks
 * trusted client memory by orders of magnitude but adds one path
 * access per level to every lookup — overhead LAORAM's performance
 * story could not absorb.
 */

#include <iostream>

#include "common/harness.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_posmap.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("bench_recursion_ablation",
                   "flat vs recursive position map (paper Section "
                   "III design choice)");
    auto entries = args.addUint("entries", "data blocks", 1 << 16);
    auto accesses = args.addUint("accesses", "trace length", 5000);
    auto packing = args.addUint("packing", "positions per map block",
                                16);
    auto seed = args.addUint("seed", "experiment seed", 61);
    args.parse(argc, argv);

    bench::printHeader(
        "Ablation — flat (HBM) vs recursive position map",
        "per-access traffic and client memory; recursion chi="
            + std::to_string(*packing));

    Rng rng(*seed);
    std::vector<oram::BlockId> trace;
    for (std::uint64_t i = 0; i < *accesses; ++i)
        trace.push_back(rng.nextBounded(*entries));

    oram::EngineConfig cfg;
    cfg.numBlocks = *entries;
    cfg.blockBytes = 128;
    cfg.seed = *seed;

    TextTable table({"client", "map levels", "client map bytes",
                     "bytes/access", "sim us/access"});

    // Flat map (the paper's design).
    {
        oram::PathOram flat(cfg);
        flat.runTrace(trace);
        const auto &c = flat.meter().counters();
        table.addRow({
            "flat (paper)",
            "0",
            TextTable::bytesCell(*entries * sizeof(oram::Leaf)),
            TextTable::cell(static_cast<double>(c.totalBytes())
                                / static_cast<double>(trace.size()),
                            0),
            TextTable::cell(flat.meter().clock().microseconds()
                                / static_cast<double>(trace.size()),
                            2),
        });
    }

    // Recursive map at two thresholds.
    for (std::uint64_t threshold : {1024ULL, 64ULL}) {
        oram::RecursiveConfig rc;
        rc.packing = *packing;
        rc.directThreshold = threshold;
        rc.seed = *seed;
        oram::RecursivePathOram rec(cfg, rc);
        rec.runTrace(trace);
        const auto &c = rec.meter().counters();
        table.addRow({
            "recursive (thr " + std::to_string(threshold) + ")",
            TextTable::cell(rec.positionMap().oramLevels()),
            TextTable::bytesCell(rec.positionMap().clientBytes()),
            TextTable::cell(static_cast<double>(c.totalBytes())
                                / static_cast<double>(trace.size()),
                            0),
            TextTable::cell(rec.meter().clock().microseconds()
                                / static_cast<double>(trace.size()),
                            2),
        });
    }

    table.print(std::cout);
    std::cout << "\ntakeaway: the flat map costs O(N) trusted memory "
                 "but zero extra traffic;\neach recursion level adds "
                 "a full (small-tree) path access per lookup — the\n"
                 "overhead the paper sidesteps by spending GPU HBM on "
                 "the flat map.\n";
    return 0;
}
