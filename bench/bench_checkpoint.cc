/**
 * @file
 * Durability-path microbench: what does it cost to checkpoint the
 * trusted client state, to restore a fresh process from the sidecar,
 * and to elastically reshard a sharded deployment?
 *
 * Three measurements over a warmed engine (payloads materialised, a
 * random trace served so the stash and RNG cursors carry real state):
 *
 *   checkpoint  serialize + seal + atomic sidecar write, mmap tree
 *               quiesced on the same boundary
 *   restore     full engine construction over the reopened tree with
 *               --restore (backend open + snapshot validation + state
 *               rebuild), i.e. the real crash-recovery latency
 *   reshard     ShardedLaoram::reshard(N -> M) including the oblivious
 *               drain and the rebuild of the shard engines
 *
 * Modes:
 *   default  CI-sized geometry
 *   --smoke  tiny geometry for the CI regression gate
 *
 * Emits BENCH_checkpoint.json for cross-PR tracking.
 */

#include <chrono>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "core/sharded_laoram.hh"
#include "util/cli.hh"

using namespace laoram;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
fillPayloads(core::Laoram &engine, std::uint64_t numBlocks,
             std::uint64_t payloadBytes)
{
    std::vector<std::uint8_t> buf(payloadBytes);
    for (oram::BlockId id = 0; id < numBlocks; ++id) {
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(id + i);
        engine.writeBlock(id, buf);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_checkpoint",
                   "trusted-state checkpoint/restore + elastic "
                   "reshard cost");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 14);
    auto payload = args.addUint("payload",
                                "payload bytes materialised per block",
                                64);
    auto accesses = args.addUint("accesses",
                                 "warmup trace length before the "
                                 "measurements",
                                 1 << 13);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto seed = args.addUint("seed", "trace seed", 7);
    auto path = args.addString("mmap-path",
                               "backing file for the persistent tree",
                               "laoram_bench_checkpoint.bin");
    auto smoke = args.addFlag("smoke",
                              "tiny geometry (CI regression gate)");
    args.parse(argc, argv);

    std::uint64_t nBlocks = *blocks;
    std::uint64_t nAccesses = *accesses;
    std::uint64_t payloadBytes = *payload;
    if (*smoke) {
        nBlocks = 1 << 10;
        nAccesses = 1 << 11;
        payloadBytes = 32;
    }
    const std::string tree = *path;
    const std::string sidecar = tree + ".ckpt";
    std::remove(tree.c_str());
    std::remove(sidecar.c_str());

    bench::printHeader(
        "Checkpoint / restore / reshard — the durability path",
        "sidecar = position map + stash + RNG cursors + meters, "
        "sealed + checksummed");
    std::cout << nBlocks << " blocks, payload " << payloadBytes
              << " B, S=" << *superblock << ", " << nAccesses
              << " warmup accesses\n\n";

    const auto trace =
        bench::randomTrace(nBlocks, nAccesses, *seed);

    core::LaoramConfig cfg;
    cfg.base.numBlocks = nBlocks;
    cfg.base.blockBytes = payloadBytes > 64 ? payloadBytes : 64;
    cfg.base.payloadBytes = payloadBytes;
    cfg.base.seed = 1;
    cfg.base.storage.kind = storage::BackendKind::MmapFile;
    cfg.base.storage.path = tree;
    cfg.superblockSize = *superblock;
    cfg.lookaheadWindow = 256;

    bench::BenchJson json("checkpoint");
    json.add("blocks", nBlocks);
    json.add("payload_bytes", payloadBytes);
    json.add("warmup_accesses", nAccesses);

    double checkpointMs = 0.0;
    std::uint64_t snapshotBytes = 0;
    {
        core::Laoram engine(cfg);
        fillPayloads(engine, nBlocks, payloadBytes);
        engine.runTrace(trace);

        const auto t0 = std::chrono::steady_clock::now();
        engine.checkpointToFile(sidecar);
        checkpointMs = msSince(t0);
        snapshotBytes = engine.checkpoint().size();
    } // tree flushed + unmapped at checkpoint state

    core::LaoramConfig rcfg = cfg;
    rcfg.base.storage.keepExisting = true;
    rcfg.base.checkpoint.path = sidecar;
    rcfg.base.checkpoint.restore = true;
    const auto t1 = std::chrono::steady_clock::now();
    core::Laoram restored(rcfg);
    const double restoreMs = msSince(t1);

    std::cout << std::fixed << std::setprecision(3)
              << "  checkpoint      " << std::setw(10) << checkpointMs
              << " ms   (" << snapshotBytes << " B sidecar, "
              << std::setprecision(2)
              << static_cast<double>(snapshotBytes) / nBlocks
              << " B/block)\n"
              << std::setprecision(3) << "  restore         "
              << std::setw(10) << restoreMs
              << " ms   (reopen + validate + rebuild)\n";
    json.add("checkpoint_ms", checkpointMs);
    json.add("restore_ms", restoreMs);
    json.add("snapshot_bytes", snapshotBytes);
    json.add("snapshot_bytes_per_block",
             static_cast<double>(snapshotBytes) / nBlocks);
    (void)restored;

    // Elastic reshard over a DRAM sharded deployment: the oblivious
    // drain dominates (one path read per block), so the cost scales
    // with the store, not with the shard counts.
    core::ShardedLaoramConfig scfg;
    scfg.engine.base.numBlocks = nBlocks;
    scfg.engine.base.blockBytes = cfg.base.blockBytes;
    scfg.engine.base.payloadBytes = payloadBytes;
    scfg.engine.base.seed = 1;
    scfg.engine.superblockSize = *superblock;
    scfg.engine.lookaheadWindow = 256;
    scfg.numShards = 1;
    scfg.pipeline.windowAccesses = 256;

    core::ShardedLaoram sharded(scfg);
    sharded.runTrace(trace);
    const std::uint32_t steps[] = {4, 1};
    std::uint32_t from = 1;
    for (std::uint32_t to : steps) {
        const auto t2 = std::chrono::steady_clock::now();
        sharded.reshard(to);
        const double ms = msSince(t2);
        std::cout << "  reshard " << from << " -> " << to << "    "
                  << std::setw(10) << std::setprecision(3) << ms
                  << " ms   (oblivious drain + rebuild)\n";
        json.add("reshard_" + std::to_string(from) + "_to_"
                     + std::to_string(to) + "_ms",
                 ms);
        from = to;
    }

    std::remove(tree.c_str());
    std::remove(sidecar.c_str());
    std::cout
        << "\nthe sidecar holds only trusted client state — it scales "
           "with the\nposition map, not the payload store — and a "
           "restore is a reopen plus a\nchecksum-validated state "
           "rebuild, not a retrain.\n";
    json.write();
    return 0;
}
