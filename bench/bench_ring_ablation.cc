/**
 * @file
 * Reproduces the RingORAM discussion of paper §VIII-G: RingORAM is an
 * orthogonal bandwidth optimisation (one block per bucket per
 * access), and the paper argues LAORAM's superblocks would compose
 * with it — with LAORAM, n accesses need ~[n*log(N)]/S + S block
 * fetches from n/S paths instead of n*log(N).
 *
 * This bench measures (1) RingORAM vs PathORAM block traffic on the
 * same trace, confirming the orthogonal saving, and (2) compares the
 * measured LAORAM block fetches per access against the paper's
 * analytic composition formula.
 */

#include <iostream>

#include "common/harness.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("bench_ring_ablation",
                   "Section VIII-G RingORAM comparison");
    auto entries = args.addUint("entries", "embedding entries",
                                1 << 14);
    auto epochs = args.addUint("epochs", "kaggle epochs", 6);
    auto seed = args.addUint("seed", "experiment seed", 41);
    args.parse(argc, argv);

    bench::printHeader(
        "Section VIII-G — RingORAM vs PathORAM vs LAORAM",
        "block fetches per logical access; RingORAM Z=4 S=4 A=3");

    const workload::Trace trace = bench::makeEpochedTrace(
        workload::DatasetKind::Kaggle, *entries, *entries, *epochs,
        *seed);
    const double n_accesses = static_cast<double>(trace.size());

    TextTable table({"engine", "blocks read", "blocks/access",
                     "GB moved", "note"});

    oram::EngineConfig base;
    base.numBlocks = *entries;
    base.blockBytes = 128;
    base.seed = *seed;

    // PathORAM baseline.
    double path_blocks_per_access = 0.0;
    {
        base.profile = oram::BucketProfile::uniform(4);
        oram::PathOram engine(base);
        engine.runTrace(trace.accesses);
        const auto &c = engine.meter().counters();
        path_blocks_per_access =
            static_cast<double>(c.blocksRead) / n_accesses;
        table.addRow({engine.name(), TextTable::cell(c.blocksRead),
                      TextTable::cell(path_blocks_per_access, 1),
                      TextTable::cell(
                          static_cast<double>(c.totalBytes()) / 1e9, 3),
                      "Z*(L+1) per access + write-back"});
    }

    // RingORAM.
    {
        oram::RingOramConfig rcfg;
        rcfg.base = base;
        rcfg.realZ = 4;
        rcfg.dummies = 4;
        rcfg.evictEvery = 3;
        oram::RingOram engine(rcfg);
        engine.runTrace(trace.accesses);
        const auto &c = engine.meter().counters();
        table.addRow({engine.name(), TextTable::cell(c.blocksRead),
                      TextTable::cell(static_cast<double>(c.blocksRead)
                                          / n_accesses,
                                      1),
                      TextTable::cell(
                          static_cast<double>(c.totalBytes()) / 1e9, 3),
                      "1 block/bucket + amortised evictions"});
    }

    // LAORAM (normal tree, S=4) + the paper's composition formula.
    {
        core::LaoramConfig lcfg;
        lcfg.base = base;
        lcfg.base.profile = oram::BucketProfile::uniform(4);
        lcfg.superblockSize = 4;
        core::Laoram engine(lcfg);
        engine.runTrace(trace.accesses);
        const auto &c = engine.meter().counters();
        table.addRow({engine.name(), TextTable::cell(c.blocksRead),
                      TextTable::cell(static_cast<double>(c.blocksRead)
                                          / n_accesses,
                                      1),
                      TextTable::cell(
                          static_cast<double>(c.totalBytes()) / 1e9, 3),
                      "superblocks on PathORAM"});

        const double L1 = static_cast<double>(
            engine.geometry().numLevels());
        const double s = 4.0;
        const double ring_per_access = L1; // RingORAM: log N blocks
        const double composed =
            ring_per_access / s + s / n_accesses * s;
        std::cout << "\nSection VIII-G composition estimate: LAORAM-on"
                     "-RingORAM would fetch\n~[n*log(N)]/S + S blocks "
                     "per n accesses = "
                  << TextTable::cell(composed, 2)
                  << " blocks/access here, vs "
                  << TextTable::cell(ring_per_access, 2)
                  << " for plain RingORAM — the same S-fold step "
                     "LAORAM takes over PathORAM.\n";
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: RingORAM cuts PathORAM's read "
                 "traffic by ~Z; LAORAM's\nsuperblock gains are "
                 "orthogonal and would compose.\n";
    return 0;
}
