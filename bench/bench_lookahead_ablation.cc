/**
 * @file
 * Ablation: how far ahead must LAORAM peek?
 *
 * Sweeps the look-ahead window (accesses preprocessed per batch of
 * bins) and the training-batch size, measuring path reads per access
 * and simulated time. Small windows starve the future-linking (every
 * block's next occurrence falls outside the window, degrading LAORAM
 * toward PathORAM); the paper's "scan an entire epoch" corresponds
 * to the right edge of the sweep. Also exercises the dummy-eviction
 * threshold, completing the design-choice ablations DESIGN.md lists.
 */

#include <iostream>

#include "common/harness.hh"
#include "core/laoram_client.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;

namespace {

struct Result
{
    double readsPerAccess;
    double dummiesPerAccess;
    double simMs;
};

Result
run(const workload::Trace &trace, std::uint64_t window,
    std::uint64_t batch, std::uint64_t high, std::uint64_t low)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = trace.numBlocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = 17;
    cfg.base.stashHighWater = high;
    cfg.base.stashLowWater = low;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = window;
    cfg.batchAccesses = batch;
    core::Laoram engine(cfg);
    engine.runTrace(trace.accesses);
    const auto &c = engine.meter().counters();
    return {c.pathReadsPerAccess(), c.dummyReadsPerAccess(),
            engine.meter().clock().milliseconds()};
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_lookahead_ablation",
                   "look-ahead window / batch size / eviction "
                   "threshold sweeps");
    auto entries = args.addUint("entries", "embedding entries",
                                1 << 14);
    auto epochs = args.addUint("epochs", "training epochs", 6);
    auto seed = args.addUint("seed", "trace seed", 71);
    args.parse(argc, argv);

    const workload::Trace trace = bench::makeEpochedTrace(
        workload::DatasetKind::Kaggle, *entries, *entries, *epochs,
        *seed);

    bench::printHeader(
        "Ablation — look-ahead window size",
        "Kaggle-like trace, S=4; window 0 = whole trace (paper: 'an "
        "entire epoch')");
    {
        TextTable t({"window (accesses)", "pathReads/acc",
                     "dummy/acc", "sim ms"});
        for (std::uint64_t w : {256ULL, 1024ULL, 4096ULL, 16384ULL,
                                65536ULL, 0ULL}) {
            const Result r = run(trace, w, 0, 500, 50);
            t.addRow({w == 0 ? "whole trace" : std::to_string(w),
                      TextTable::cell(r.readsPerAccess, 3),
                      TextTable::cell(r.dummiesPerAccess, 3),
                      TextTable::cell(r.simMs, 1)});
        }
        t.print(std::cout);
        std::cout << "shape: longer look-ahead => more future-linked "
                     "remaps => fewer path reads.\n\n";
    }

    bench::printHeader(
        "Ablation — training-batch size",
        "paper §IV-A batches reads for the upcoming training batch");
    {
        TextTable t({"batch (accesses)", "pathReads/acc", "dummy/acc",
                     "sim ms"});
        for (std::uint64_t b : {0ULL, 64ULL, 256ULL, 1024ULL,
                                4096ULL}) {
            const Result r = run(trace, 0, b, 500, 50);
            t.addRow({b == 0 ? "per-bin" : std::to_string(b),
                      TextTable::cell(r.readsPerAccess, 3),
                      TextTable::cell(r.dummiesPerAccess, 3),
                      TextTable::cell(r.simMs, 1)});
        }
        t.print(std::cout);
        std::cout << "shape: batching amortises round trips and "
                     "relieves stash pressure via the\nunion "
                     "write-back.\n\n";
    }

    bench::printHeader(
        "Ablation — background-eviction threshold",
        "paper §VIII-E uses trigger 500 -> drain 50");
    {
        TextTable t({"high/low water", "dummy/acc", "stash peak",
                     "sim ms"});
        struct HW { std::uint64_t hi, lo; };
        for (HW hw : {HW{100, 10}, HW{500, 50}, HW{2000, 200},
                      HW{100000, 1000}}) {
            core::LaoramConfig cfg;
            cfg.base.numBlocks = trace.numBlocks;
            cfg.base.blockBytes = 128;
            cfg.base.seed = 17;
            cfg.base.stashHighWater = hw.hi;
            cfg.base.stashLowWater = hw.lo;
            cfg.superblockSize = 8; // pressure-heavy configuration
            core::Laoram engine(cfg);
            engine.runTrace(trace.accesses);
            const auto &c = engine.meter().counters();
            t.addRow({std::to_string(hw.hi) + "/"
                          + std::to_string(hw.lo),
                      TextTable::cell(c.dummyReadsPerAccess(), 3),
                      TextTable::cell(c.stashPeak),
                      TextTable::cell(
                          engine.meter().clock().milliseconds(), 1)});
        }
        t.print(std::cout);
        std::cout << "shape: tighter thresholds trade dummy-read "
                     "bandwidth for client memory.\n";
    }
    return 0;
}
