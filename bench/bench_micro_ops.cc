/**
 * @file
 * Engine micro-throughput on google-benchmark: wall-clock logical
 * accesses/second of each engine across tree heights. This is
 * infrastructure benchmarking (host speed of the simulator itself),
 * not a paper figure — the paper metrics are simulated-time ratios,
 * which bench_fig7_speedups reports.
 */

#include <benchmark/benchmark.h>

#include "common/harness.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

std::vector<oram::BlockId>
randomTrace(std::uint64_t blocks, std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t(n);
    for (auto &id : t)
        id = rng.nextBounded(blocks);
    return t;
}

void
BM_PathOramAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    oram::EngineConfig cfg;
    cfg.numBlocks = blocks;
    cfg.blockBytes = 128;
    cfg.seed = 1;
    oram::PathOram engine(cfg);
    const auto trace = randomTrace(blocks, 1024, 2);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.touch(trace[i++ & 1023]);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_LaoramBinAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = 1;
    cfg.superblockSize = 4;
    core::Laoram engine(cfg);

    core::Preprocessor prep(
        core::PreprocessorConfig{4, engine.geometry().numLeaves()}, 3);
    const auto trace = randomTrace(blocks, 4096, 4);
    const auto res = prep.run(trace);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.accessBin(res.bins[i++ % res.bins.size()]);
    }
    // Each bin serves ~4 logical accesses.
    state.SetItemsProcessed(state.iterations() * 4);
}

void
BM_RingOramAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    oram::RingOramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = 1;
    oram::RingOram engine(cfg);
    const auto trace = randomTrace(blocks, 1024, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.touch(trace[i++ & 1023]);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_PreprocessorScan(benchmark::State &state)
{
    const std::uint64_t blocks = 1 << 18;
    core::Preprocessor prep(core::PreprocessorConfig{4, blocks}, 7);
    const auto trace = randomTrace(
        blocks, static_cast<std::uint64_t>(state.range(0)), 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prep.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

} // namespace

BENCHMARK(BM_PathOramAccess)->Arg(12)->Arg(16)->Arg(18);
BENCHMARK(BM_LaoramBinAccess)->Arg(12)->Arg(16)->Arg(18);
BENCHMARK(BM_RingOramAccess)->Arg(12)->Arg(16);
BENCHMARK(BM_PreprocessorScan)->Arg(4096)->Arg(65536);

BENCHMARK_MAIN();
