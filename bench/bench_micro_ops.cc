/**
 * @file
 * Engine micro-throughput on google-benchmark: wall-clock logical
 * accesses/second of each engine across tree heights. This is
 * infrastructure benchmarking (host speed of the simulator itself),
 * not a paper figure — the paper metrics are simulated-time ratios,
 * which bench_fig7_speedups reports.
 */

#include <benchmark/benchmark.h>

#include "common/harness.hh"
#include "core/pipeline.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

using bench::randomTrace;

void
BM_PathOramAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    oram::EngineConfig cfg;
    cfg.numBlocks = blocks;
    cfg.blockBytes = 128;
    cfg.seed = 1;
    oram::PathOram engine(cfg);
    const auto trace = randomTrace(blocks, 1024, 2);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.touch(trace[i++ & 1023]);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_LaoramBinAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = 1;
    cfg.superblockSize = 4;
    core::Laoram engine(cfg);

    core::Preprocessor prep(
        core::PreprocessorConfig{4, engine.geometry().numLeaves()}, 3);
    const auto trace = randomTrace(blocks, 4096, 4);
    const auto res = prep.run(trace);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.accessBin(res.bins[i++ % res.bins.size()]);
    }
    // Each bin serves ~4 logical accesses.
    state.SetItemsProcessed(state.iterations() * 4);
}

void
BM_RingOramAccess(benchmark::State &state)
{
    const std::uint64_t blocks = std::uint64_t{1}
        << static_cast<unsigned>(state.range(0));
    oram::RingOramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 128;
    cfg.base.seed = 1;
    oram::RingOram engine(cfg);
    const auto trace = randomTrace(blocks, 1024, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        engine.touch(trace[i++ & 1023]);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_PreprocessorScan(benchmark::State &state)
{
    const std::uint64_t blocks = 1 << 18;
    core::Preprocessor prep(core::PreprocessorConfig{4, blocks}, 7);
    const auto trace = randomTrace(
        blocks, static_cast<std::uint64_t>(state.range(0)), 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prep.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_StorageVectoredPathRead(benchmark::State &state)
{
    // The vectored-path hot path of the AccessSink cleanup: with no
    // sink installed the per-path read takes ONE branch for the audit
    // tap, not one per slot. range(0) == 1 attaches a trivial sink so
    // the no-sink fast path and the probe path are directly
    // comparable.
    const std::uint64_t blocks = 1 << 16;
    oram::EngineConfig cfg;
    cfg.numBlocks = blocks;
    cfg.blockBytes = 128;
    cfg.seed = 11;
    oram::PathOram engine(cfg);
    oram::ServerStorage &storage = engine.storageForTest();
    const oram::TreeGeometry &geom = engine.geometry();

    std::uint64_t sunk = 0;
    if (state.range(0) == 1) {
        storage.setAccessSink(
            [&sunk](std::uint64_t, bool) { ++sunk; });
    }

    // One whole root-to-leaf path per iteration, like readPathMetered.
    std::vector<std::uint64_t> slots;
    for (unsigned level = 0; level < geom.numLevels(); ++level) {
        const auto node = geom.pathNode(/*leaf=*/3, level);
        const std::uint64_t base = geom.nodeSlotBase(node);
        for (std::uint64_t s = 0; s < geom.bucketSize(level); ++s)
            slots.push_back(base + s);
    }
    std::vector<oram::StoredBlock> out;
    for (auto _ : state) {
        storage.readSlots(slots.data(), slots.size(), out);
        benchmark::DoNotOptimize(out);
    }
    benchmark::DoNotOptimize(sunk);
    state.SetItemsProcessed(state.iterations() * slots.size());
}

void
BM_PipelineTrace(benchmark::State &state)
{
    // Full two-stage pipeline over a fixed trace; range(0) selects
    // the mode (0 = Simulated cost model, 1 = Concurrent threads), so
    // the delta is the real thread + queue overhead per access.
    const std::uint64_t blocks = 1 << 14;
    const auto trace = randomTrace(blocks, 1 << 14, 8);
    core::PipelineConfig pc;
    pc.windowAccesses = 2048;
    pc.mode = state.range(0) == 0 ? core::PipelineMode::Simulated
                                  : core::PipelineMode::Concurrent;
    for (auto _ : state) {
        core::LaoramConfig cfg;
        cfg.base.numBlocks = blocks;
        cfg.base.blockBytes = 128;
        cfg.base.seed = 9;
        cfg.superblockSize = 4;
        core::Laoram engine(cfg);
        core::BatchPipeline pipe(engine, pc);
        benchmark::DoNotOptimize(pipe.run(trace));
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

} // namespace

BENCHMARK(BM_PathOramAccess)->Arg(12)->Arg(16)->Arg(18);
BENCHMARK(BM_LaoramBinAccess)->Arg(12)->Arg(16)->Arg(18);
BENCHMARK(BM_RingOramAccess)->Arg(12)->Arg(16);
BENCHMARK(BM_PreprocessorScan)->Arg(4096)->Arg(65536);
BENCHMARK(BM_StorageVectoredPathRead)->Arg(0)->Arg(1);
BENCHMARK(BM_PipelineTrace)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
