/**
 * @file
 * Reproduces the paper's PrORAM claim (§I-B, §VII-B): on high-entropy
 * embedding traces, history-based dynamic superblocks almost never
 * merge, so PrORAM degenerates to PathORAM — which is why the paper
 * uses PathORAM (superblock size 1) as its baseline and why
 * look-ahead (rather than look-behind) is the enabling idea.
 *
 * Sweeps the locality knob: a Kaggle-like stream (low locality) vs an
 * artificially group-local stream (PrORAM's best case) to show the
 * merge machinery works and simply finds nothing to merge on real
 * embedding traffic.
 */

#include <iostream>

#include "common/harness.hh"
#include "oram/path_oram.hh"
#include "oram/pro_oram.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace laoram;

namespace {

struct StreamResult
{
    std::uint64_t merges = 0;
    std::uint64_t mergedNow = 0;
    double bytesVsPathOram = 0.0;
    double simVsPathOram = 0.0;
};

StreamResult
runStream(const workload::Trace &trace, std::uint64_t seed)
{
    oram::EngineConfig base;
    base.numBlocks = trace.numBlocks;
    base.blockBytes = 128;
    base.seed = seed;
    base.profile = oram::BucketProfile::uniform(4);

    oram::PathOram path(base);
    path.runTrace(trace.accesses);

    oram::ProOramConfig pcfg;
    pcfg.base = base;
    pcfg.groupSize = 4;
    oram::ProOram pro(pcfg);
    pro.runTrace(trace.accesses);

    StreamResult r;
    r.merges = pro.totalMerges();
    r.mergedNow = pro.mergedGroups();
    r.bytesVsPathOram =
        static_cast<double>(pro.meter().counters().totalBytes())
        / static_cast<double>(path.meter().counters().totalBytes());
    r.simVsPathOram = pro.meter().clock().nanoseconds()
        / path.meter().clock().nanoseconds();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_proram_baseline",
                   "PrORAM degeneration study (paper Sections I-B, "
                   "VII-B)");
    auto entries = args.addUint("entries", "embedding entries",
                                1 << 14);
    auto accesses = args.addUint("accesses", "trace length", 40000);
    auto seed = args.addUint("seed", "experiment seed", 51);
    args.parse(argc, argv);

    bench::printHeader(
        "PrORAM on embedding traces — why the baseline is PathORAM",
        "dynamic superblocks (group 4, counter merge/split) vs "
        "PathORAM");

    TextTable table({"stream", "merges", "merged groups",
                     "traffic vs PathORAM", "time vs PathORAM"});

    // (1) Kaggle-like: the paper's Fig. 2 stream.
    {
        const workload::Trace trace = workload::makeTrace(
            workload::DatasetKind::Kaggle, *entries, *accesses, *seed);
        const StreamResult r = runStream(trace, *seed);
        table.addRow({"kaggle-like (paper)", TextTable::cell(r.merges),
                      TextTable::cell(r.mergedNow),
                      TextTable::cell(r.bytesVsPathOram, 3) + "x",
                      TextTable::cell(r.simVsPathOram, 3) + "x"});
    }

    // (2) Group-local: consecutive ids accessed together (PrORAM's
    // design point) — merges must fire here, proving the machinery.
    {
        workload::Trace trace;
        trace.name = "group-local";
        trace.numBlocks = *entries;
        Rng rng(*seed);
        while (trace.accesses.size() < *accesses) {
            const std::uint64_t group =
                rng.nextBounded(*entries / 4);
            for (int m = 0; m < 4; ++m)
                trace.accesses.push_back(group * 4 + m);
        }
        const StreamResult r = runStream(trace, *seed);
        table.addRow({"group-local (best case)",
                      TextTable::cell(r.merges),
                      TextTable::cell(r.mergedNow),
                      TextTable::cell(r.bytesVsPathOram, 3) + "x",
                      TextTable::cell(r.simVsPathOram, 3) + "x"});
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: on the embedding trace PrORAM "
                 "merges ~nothing and its\ntraffic/time ratios sit at "
                 "~1.0x PathORAM; on the contrived group-local\n"
                 "stream the same machinery merges eagerly.\n";
    return 0;
}
