/**
 * @file
 * Storage-backend comparison: the same LAORAM pipeline served from
 * DRAM, a persistent mmap tree (warm and cold page cache), and a
 * remote-KV node over batched/async RPC (unshaped, and shaped to a
 * slow-network regime with --remote-latency-us / --remote-mbps) —
 * plus a remote-loopback variant that dials a real TCP listener on
 * 127.0.0.1, so the RPC cost includes the genuine kernel socket path
 * instead of an in-process socketpair.
 *
 * For each backend the bench reports wall-clock serving throughput,
 * the *measured* backend I/O stall (ServerStorage IoStats: time spent
 * encoding/decoding slots, including the page faults that pull a
 * file-backed tree from disk and the RPC waits of a remote tree), and
 * the DRAM-resident footprint — the honest version of "how much
 * memory does the tree cost", which for an mmap tree is the mapped
 * page set and for a remote tree the *server node's* residency.
 *
 * Modes:
 *   default  CI-sized geometry (seconds)
 *   --smoke  tiny geometry for the CI regression gate
 *   --full   paper-scale Kaggle geometry (payload materialised; the
 *            mmap tree file grows to multiple GiB)
 *
 * Emits BENCH_storage_backends.json for cross-PR tracking.
 */

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "core/pipeline.hh"
#include "net/node_server.hh"
#include "oram/tree_geometry.hh"
#include "storage/remote_backend.hh"
#include "storage/slot_backend.hh"
#include "util/cli.hh"

using namespace laoram;

namespace {

struct Variant
{
    std::string label;     ///< dram | mmap-warm | mmap-cold
    storage::StorageConfig storage;
    bool coldCache = false;
};

struct Result
{
    std::string label;
    double wallMs = 0.0;
    double accessesPerSec = 0.0;
    double ioMs = 0.0;
    double ioServePct = 0.0;
    double stallMs = 0.0;
    std::uint64_t residentBytes = 0;
    std::uint64_t slotsTouched = 0;
};

Result
runVariant(const Variant &v, std::uint64_t blocks,
           std::uint64_t payload, std::uint64_t superblock,
           std::uint64_t window, const std::vector<oram::BlockId> &trace)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = payload > 0 ? payload : 128;
    cfg.base.payloadBytes = payload;
    cfg.base.seed = 1;
    cfg.base.storage = v.storage;
    cfg.superblockSize = superblock;
    core::Laoram engine(cfg);

    if (v.coldCache)
        engine.storageForTest().dropPageCache();

    core::PipelineConfig pc;
    pc.windowAccesses = window;
    pc.mode = core::PipelineMode::Concurrent;
    core::BatchPipeline pipe(engine, pc);

    const storage::IoStats ioBefore = engine.storageForAudit().ioStats();
    const auto rep = pipe.run(trace);
    const storage::IoStats io =
        engine.storageForAudit().ioStats().since(ioBefore);

    Result r;
    r.label = v.label;
    r.wallMs = rep.wallTotalNs / 1e6;
    r.accessesPerSec = rep.wallTotalNs > 0.0
        ? static_cast<double>(trace.size()) / (rep.wallTotalNs / 1e9)
        : 0.0;
    r.ioMs = rep.wallIoNs / 1e6;
    r.ioServePct = rep.ioServeFraction * 100.0;
    r.stallMs = rep.wallStallNs / 1e6;
    r.residentBytes = engine.storageForAudit().residentBytes();
    r.slotsTouched = io.slotsRead + io.slotsWritten;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_storage_backends",
                   "DRAM vs persistent mmap tree stores under the "
                   "two-stage pipeline");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 14);
    auto payload = args.addUint("payload",
                                "payload bytes materialised per block",
                                128);
    auto accesses = args.addUint("accesses", "trace length", 1 << 14);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto window = args.addUint("window", "pipeline window accesses",
                               2048);
    auto seed = args.addUint("seed", "trace seed", 7);
    auto path = args.addString("mmap-path",
                               "backing file for the mmap variants",
                               "laoram_bench_tree.bin");
    auto smoke = args.addFlag("smoke",
                              "tiny geometry (CI regression gate)");
    auto full = args.addFlag("full",
                             "paper-scale Kaggle geometry (GiB-sized "
                             "tree file)");
    auto remoteLatencyUs = args.addUint(
        "remote-latency-us",
        "shaped per-RPC latency of the remote-shaped variant", 50);
    auto remoteMbps = args.addUint(
        "remote-mbps",
        "shaped link bandwidth of the remote-shaped variant (MB/s, "
        "0 = unlimited)",
        500);
    args.parse(argc, argv);

    std::uint64_t nBlocks = *blocks;
    std::uint64_t nAccesses = *accesses;
    std::uint64_t payloadBytes = *payload;
    if (*smoke) {
        nBlocks = 1 << 10;
        nAccesses = 1 << 11;
        payloadBytes = 64;
    } else if (*full) {
        nBlocks = 10131227; // Kaggle entries (Table I)
        nAccesses = 1 << 18;
        payloadBytes = 128;
    }

    bench::printHeader(
        "Storage backends — DRAM vs mmap (warm/cold) vs remote KV "
        "(unshaped/shaped)",
        "one two-stage pipeline per variant; I/O stall is measured "
        "backend time, not a model");
    std::cout << nAccesses << " accesses over " << nBlocks
              << " blocks, payload " << payloadBytes << " B, S="
              << *superblock << ", window " << *window << "\n\n";

    const auto trace = bench::randomTrace(nBlocks, nAccesses, *seed);

    std::vector<Variant> variants;
    {
        Variant dram;
        dram.label = "dram";
        variants.push_back(dram);

        Variant warm;
        warm.label = "mmap-warm";
        warm.storage.kind = storage::BackendKind::MmapFile;
        warm.storage.path = *path;
        variants.push_back(warm);

        Variant cold = warm;
        cold.label = "mmap-cold";
        cold.coldCache = true;
        variants.push_back(cold);

        // Remote-KV node over DRAM: one vectored RPC per path, async
        // write window. Unshaped isolates the protocol cost; shaped
        // reproduces a slow-network regime deterministically.
        Variant remote;
        remote.label = "remote";
        remote.storage.kind = storage::BackendKind::Remote;
        variants.push_back(remote);

        Variant shaped = remote;
        shaped.label = "remote-shaped";
        shaped.storage.remote.latencyNs =
            static_cast<std::int64_t>(*remoteLatencyUs) * 1000;
        shaped.storage.remote.bytesPerSec =
            *remoteMbps * 1000 * 1000;
        variants.push_back(shaped);
    }

    // Real-loopback node: the same protocol over an accepted TCP
    // connection (kernel socket path, Nagle off) instead of the
    // self-hosted socketpair — what a laoram_node deployment pays on
    // a one-host testbed.
    const oram::TreeGeometry nodeGeom(
        nBlocks, payloadBytes > 0 ? payloadBytes : 128,
        oram::BucketProfile::uniform(4));
    storage::RemoteKvServer node(
        storage::makeBackend(storage::StorageConfig{},
                             nodeGeom.totalSlots(), 16 + payloadBytes,
                             0),
        storage::RemoteKvConfig{});
    std::unique_ptr<net::NodeListener> listener;
    {
        net::Endpoint ep;
        std::string error;
        if (parseEndpoint("127.0.0.1:0", &ep, &error)) {
            listener = std::make_unique<net::NodeListener>(node, ep);
            Variant loopback;
            loopback.label = "remote-loopback";
            loopback.storage.kind = storage::BackendKind::Remote;
            loopback.storage.remote.endpoint =
                listener->endpoint().str();
            variants.push_back(loopback);
        }
    }

    bench::BenchJson json("storage_backends");
    json.add("blocks", nBlocks);
    json.add("accesses", nAccesses);
    json.add("payload_bytes", payloadBytes);

    std::cout << "  backend      wall ms   kacc/s   io ms   io/serve"
                 "   queue-stall ms   resident MiB\n";
    for (const Variant &v : variants) {
        const Result r = runVariant(v, nBlocks, payloadBytes,
                                    *superblock, *window, trace);
        std::cout << std::fixed << std::setprecision(2) << "  "
                  << std::left << std::setw(10) << r.label
                  << std::right << std::setw(10) << r.wallMs
                  << std::setw(9) << r.accessesPerSec / 1e3
                  << std::setw(8) << r.ioMs << std::setw(10)
                  << r.ioServePct << "%" << std::setw(16) << r.stallMs
                  << std::setw(15)
                  << static_cast<double>(r.residentBytes)
                     / (1024.0 * 1024.0)
                  << "\n";

        json.add(r.label + ".wall_ms", r.wallMs);
        json.add(r.label + ".accesses_per_sec", r.accessesPerSec);
        json.add(r.label + ".io_stall_ms", r.ioMs);
        json.add(r.label + ".io_serve_fraction",
                 r.ioServePct / 100.0);
        json.add(r.label + ".queue_stall_ms", r.stallMs);
        json.add(r.label + ".resident_bytes", r.residentBytes);
        json.add(r.label + ".slots_touched", r.slotsTouched);
    }
    std::remove(path->c_str());

    std::cout
        << "\ndram serves from the heap; mmap-warm from the page "
           "cache; mmap-cold\nfaults the tree back in from the file; "
           "remote moves every path over a\nbatched RPC link "
           "(remote-shaped adds modeled latency/bandwidth), so the\n"
           "io/serve share is the genuine disk or network wait the "
           "pipeline's prep\nstage gets to hide behind.\n";
    json.write();
    return 0;
}
