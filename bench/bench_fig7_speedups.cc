/**
 * @file
 * Reproduces paper Fig. 7 (a-f): LAORAM speedup over PathORAM for the
 * Permutation, Gaussian, DLRM-Kaggle and XLM-R-XNLI datasets across
 * the seven engine configurations {PathORAM, Normal/S2-S8,
 * Fat/S2-S8}.
 *
 * Speedup is the ratio of simulated end-to-end access time (cost
 * model: DDR4 + PCIe-class latency/bandwidth) over identical traces.
 * Defaults run a scaled-down, shape-preserving geometry (multiple
 * training epochs, one look-ahead window); --full switches to paper
 * Table-I entry counts (slow: hours for all six panels on one core —
 * combine with --dataset to run a single panel).
 *
 * Paper reference points: Permutation-8M Normal/S2 1.46x, Normal/S4
 * 1.55x, Normal/S8 dips to 1.12x; DLRM-Kaggle ~5x and XNLI ~5.4x for
 * the best configuration.
 */

#include <iostream>

#include "common/harness.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;
using workload::DatasetKind;

namespace {

struct Panel
{
    const char *title;
    DatasetKind kind;
    std::uint64_t entriesOverride;     // 0 = use scaleFor(); scaled runs
    std::uint64_t fullEntriesOverride; // 0 = use scaleFor(); --full runs
};

void
runPanel(const Panel &panel, bool full, std::uint64_t epochs,
         std::uint64_t seed)
{
    bench::DatasetScale scale = bench::scaleFor(panel.kind, full);
    const std::uint64_t override_entries =
        full ? panel.fullEntriesOverride : panel.entriesOverride;
    if (override_entries != 0) {
        scale.numBlocks = override_entries;
        scale.accesses = override_entries;
    }

    const workload::Trace trace = bench::makeEpochedTrace(
        panel.kind, scale.numBlocks, scale.accesses, epochs, seed);

    bench::HarnessConfig hcfg;
    hcfg.blockBytes = scale.blockBytes;
    hcfg.seed = seed;

    std::cout << "\n--- " << panel.title << " (" << scale.numBlocks
              << " entries, " << trace.size() << " accesses, "
              << epochs << " epochs) ---\n";

    double baseline_ms = 0.0;
    TextTable table({"config", "sim ms", "speedup", "pathReads/acc",
                     "dummyReads/acc"});
    for (const bench::EngineSpec &spec : bench::paperConfigs()) {
        const bench::RunResult r =
            bench::runSpec(spec, trace, hcfg);
        if (spec.kind == bench::EngineSpec::Kind::PathOramBaseline)
            baseline_ms = r.simMs;
        table.addRow({
            r.label,
            TextTable::cell(r.simMs, 2),
            TextTable::cell(baseline_ms / r.simMs, 2) + "x",
            TextTable::cell(r.counters.pathReadsPerAccess(), 3),
            TextTable::cell(r.counters.dummyReadsPerAccess(), 3),
        });
    }
    table.print(std::cout);
    std::cout << "CSV:\n";
    table.printCsv(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig7_speedups",
                   "Reproduces Fig. 7 speedup panels");
    auto full = args.addFlag("full", "paper-scale entry counts");
    auto epochs = args.addUint("epochs", "training epochs per run", 6);
    auto seed = args.addUint("seed", "experiment seed", 1);
    auto only = args.addString(
        "dataset", "run one panel: permutation|gaussian|kaggle|xnli",
        "");
    args.parse(argc, argv);

    bench::printHeader(
        "Fig. 7 — LAORAM speedups over PathORAM",
        "six panels; simulated time ratio under one cost model");

    const Panel panels[] = {
        {"(a) Permutation-8M(scaled)", DatasetKind::Permutation, 0,
         0},
        {"(b) Permutation-16M(scaled)", DatasetKind::Permutation,
         1 << 15, 16ULL << 20},
        {"(c) Gaussian-8M(scaled)", DatasetKind::Gaussian, 0, 0},
        {"(d) Gaussian-16M(scaled)", DatasetKind::Gaussian, 1 << 15,
         16ULL << 20},
        {"(e) DLRM with Kaggle", DatasetKind::Kaggle, 0, 0},
        {"(f) XLM-R with XNLI", DatasetKind::Xnli, 0, 0},
    };

    for (const Panel &panel : panels) {
        if (!only->empty()
            && *only != workload::datasetName(panel.kind)) {
            continue;
        }
        runPanel(panel, *full, *epochs, *seed);
    }

    std::cout << "\npaper shape check: Normal/S4 beats Normal/S2; "
                 "Normal/S8 suffers from dummy reads;\nFat/S4 and "
                 "Fat/S8 recover the loss; Kaggle/XNLI speedups far "
                 "exceed Permutation.\n";
    return 0;
}
