/**
 * @file
 * Reproduces paper Fig. 8: stash occupancy over the first 12,500
 * accesses for Fat-4 / Fat-8 / Normal-4 / Normal-8 (superblock size 4
 * resp. 8; fat buckets 8->4 resp. 16->8) with background eviction
 * DISABLED so raw stash growth is visible — the paper's curves show
 * Normal/4 reaching ~10,600 blocks vs Fat/4 ~3,600, and Normal/8
 * ~15,500 vs Fat/8 ~4,700.
 *
 * Three conditions create the pressure and are reproduced here:
 *  - the embedding table is fully loaded into the tree before
 *    training starts (real deployments train over a resident table);
 *  - the look-ahead window spans past the measured accesses (into the
 *    next epoch), so every accessed block is remapped onto a *shared*
 *    future-bin path — the superblock co-location that write-backs
 *    can rarely satisfy deep in the tree;
 *  - measurement happens in the WARM phase (after one full epoch):
 *    warm bins fetch a single path but must repark S blocks onto
 *    divergent future paths, which only fits near the root — exactly
 *    the capacity the fat tree doubles.
 *
 * Emits the growth curves as CSV series plus the final/peak summary.
 * Absolute counts scale with tree height (we default to a 16K-entry
 * tree vs the paper's 8M); the figure's message — the fat tree grows
 * its stash ~3x slower at equal superblock size — is reproduced
 * quantitatively (paper ratios: 10600/3600 = 2.9x, 15500/4700 =
 * 3.3x).
 */

#include <algorithm>
#include <iostream>

#include "common/harness.hh"
#include "core/laoram_client.hh"
#include "core/preprocessor.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;

namespace {

struct Series
{
    std::string label;
    std::vector<std::uint64_t> samples; // stash size every sampleEvery
    std::uint64_t peak = 0;
    std::uint64_t atEnd = 0;
};

Series
runConfig(const std::string &label, std::uint64_t superblock, bool fat,
          const workload::Trace &trace, std::uint64_t measure,
          std::uint64_t sample_every)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = trace.numBlocks;
    cfg.base.blockBytes = 128;
    cfg.base.profile = fat ? oram::BucketProfile::fat(superblock)
                           : oram::BucketProfile::uniform(superblock);
    // Disable background eviction: the figure shows raw growth.
    cfg.base.stashHighWater = ~std::uint64_t{0};
    cfg.base.stashLowWater = 0;
    cfg.base.seed = 99;
    cfg.superblockSize = superblock;
    core::Laoram engine(cfg);

    // Pre-load the table: every embedding row resident in the tree.
    for (oram::BlockId id = 0; id < trace.numBlocks; ++id)
        engine.touch(id);

    // Preprocess the WHOLE multi-epoch trace (the paper's "scan an
    // entire epoch" look-ahead). Epoch 1 is served as warm-up; the
    // measured window starts with epoch 2, where every bin fetch is
    // coalesced and the superblock write-back pressure is live.
    core::Preprocessor prep(
        core::PreprocessorConfig{superblock,
                                 engine.geometry().numLeaves()},
        7);
    const auto res = prep.run(trace.accesses);
    const std::uint64_t warmup = trace.numBlocks; // one epoch

    Series out;
    out.label = label;
    std::uint64_t served = 0, next_sample = sample_every;
    for (const core::SuperblockBin &bin : res.bins) {
        engine.accessBin(bin);
        served += bin.rawAccesses;
        if (served < warmup)
            continue;
        const std::uint64_t measured = served - warmup;
        if (measured > measure)
            break;
        out.peak = std::max(out.peak, engine.stashSize());
        while (measured >= next_sample && next_sample <= measure) {
            out.samples.push_back(engine.stashSize());
            next_sample += sample_every;
        }
    }
    out.atEnd = engine.stashSize();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig8_stash",
                   "Reproduces Fig. 8 (stash growth curves)");
    auto measure = args.addUint("accesses", "measured accesses", 12500);
    auto entries = args.addUint("entries", "embedding entries",
                                1 << 14);
    auto sample = args.addUint("sample", "sample stride (accesses)",
                               500);
    auto seed = args.addUint("seed", "trace seed", 3);
    args.parse(argc, argv);

    bench::printHeader(
        "Fig. 8 — stash usage, fat vs normal tree",
        "permutation dataset (worst case), background eviction off; "
        "bucket 4 / fat 8->4 and bucket 8 / fat 16->8; table "
        "pre-loaded, look-ahead spans the next epoch");

    // Three epochs: epoch 1 warms the look-ahead up, epoch 2 is
    // measured, epoch 3 provides the future links for epoch 2.
    const workload::Trace trace = bench::makeEpochedTrace(
        workload::DatasetKind::Permutation, *entries, *entries, 3,
        *seed);

    const Series series[] = {
        runConfig("Fat-4", 4, true, trace, *measure, *sample),
        runConfig("Fat-8", 8, true, trace, *measure, *sample),
        runConfig("Normal-4", 4, false, trace, *measure, *sample),
        runConfig("Normal-8", 8, false, trace, *measure, *sample),
    };

    TextTable summary({"config", "stash @end", "stash peak",
                       "paper @12500"});
    const char *paper[] = {"~3600", "~4700", "~10600", "~15500"};
    for (std::size_t i = 0; i < 4; ++i) {
        summary.addRow({series[i].label,
                        TextTable::cell(series[i].atEnd),
                        TextTable::cell(series[i].peak), paper[i]});
    }
    summary.print(std::cout);

    std::cout << "\ncurves CSV (accesses,Fat-4,Fat-8,Normal-4,"
                 "Normal-8):\n";
    std::size_t points = 0;
    for (const Series &s : series)
        points = std::max(points, s.samples.size());
    for (std::size_t p = 0; p < points; ++p) {
        std::cout << (p + 1) * *sample;
        for (const Series &s : series) {
            std::cout << ","
                      << (p < s.samples.size() ? s.samples[p] : 0);
        }
        std::cout << "\n";
    }

    std::cout << "\npaper shape check: fat-tree stash grows several "
                 "times slower than the\nnormal tree at equal "
                 "superblock size, and the gap widens with S.\n";
    return 0;
}
