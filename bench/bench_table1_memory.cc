/**
 * @file
 * Reproduces paper Table I: embedding-table memory requirement for
 * Insecure / PathORAM / LAORAM / FAT across the four evaluation
 * configurations (8M, 16M, Kaggle, XNLI).
 *
 * Pure geometry — runs at full paper scale instantly (no storage is
 * allocated). The paper's own FAT column (+25 % / +50 %) is printed
 * alongside; our linear 2Z->Z profile yields ~+12.5 %, a discrepancy
 * discussed in EXPERIMENTS.md.
 */

#include <cstdio>
#include <iostream>

#include "common/harness.hh"
#include "oram/server_storage.hh"
#include "oram/tree_geometry.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;
using oram::BucketProfile;
using oram::TreeGeometry;

namespace {

struct Row
{
    const char *name;
    std::uint64_t entries;
    std::uint64_t bytes;
    const char *paperInsecure;
    const char *paperPath;
    const char *paperLaoram;
    const char *paperFat;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_table1_memory",
                   "Reproduces Table I (memory requirement)");
    auto z = args.addUint("bucket", "leaf bucket size Z", 4);
    args.parse(argc, argv);

    bench::printHeader(
        "Table I — Embedding table memory requirement",
        "paper values in parentheses; LAORAM column equals PathORAM "
        "(same tree), FAT uses the linear 2Z->Z profile of Section V");

    const Row rows[] = {
        {"8M", 8ULL << 20, 128, "1GB", "8GB", "8GB", "10GB"},
        {"16M", 16ULL << 20, 128, "2GB", "16GB", "16GB", "24GB"},
        {"Kaggle", 10131227, 128, "1.2GB", "16GB", "16GB", "20.3GB"},
        {"XNLI", 262144, 4096, "1GB", "16GB", "16GB", "20.5GB"},
    };

    TextTable table({"config", "insecure", "PathORAM", "LAORAM", "FAT",
                     "fat overhead"});
    for (const Row &r : rows) {
        const TreeGeometry uniform(r.entries, r.bytes,
                                   BucketProfile::uniform(*z));
        const TreeGeometry fat(r.entries, r.bytes,
                               BucketProfile::fat(*z));
        const std::uint64_t insecure =
            TreeGeometry::insecureBytes(r.entries, r.bytes);
        const double overhead =
            static_cast<double>(fat.serverBytes())
                / static_cast<double>(uniform.serverBytes())
            - 1.0;
        table.addRow({
            r.name,
            TextTable::bytesCell(insecure) + " (" + r.paperInsecure
                + ")",
            TextTable::bytesCell(uniform.serverBytes()) + " ("
                + r.paperPath + ")",
            TextTable::bytesCell(uniform.serverBytes()) + " ("
                + r.paperLaoram + ")",
            TextTable::bytesCell(fat.serverBytes()) + " (" + r.paperFat
                + ")",
            "+" + TextTable::cell(overhead * 100.0, 1) + "%",
        });
    }
    table.print(std::cout);

    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);

    std::cout << "\nnote: PathORAM's 8x blow-up over insecure (Z=4, one"
                 " leaf per block)\nis reproduced exactly; the paper's"
                 " FAT +25%/+50% rows are not derivable\nfrom its own"
                 " linear bucket rule (see EXPERIMENTS.md).\n";

    // The table above is *tree size* (geometry). Which of those bytes
    // are actually DRAM is a storage-backend property: a DRAM tree is
    // fully resident, an mmap tree keeps only its touched page set in
    // memory and the rest on disk. Demonstrate with a real (small)
    // tree so the distinction stays honest.
    std::cout << "\nDRAM-resident vs file-backed (measured, "
              << (1 << 16) << "-entry tree, 128 B payload):\n";
    {
        const TreeGeometry geom(1 << 16, 128,
                                BucketProfile::uniform(*z));
        const char *treeFile = "table1_resident_demo.tree";

        storage::StorageConfig dramCfg; // default: DRAM
        oram::ServerStorage dram(geom, 128, false, 1, dramCfg);

        storage::StorageConfig mmapCfg;
        mmapCfg.kind = storage::BackendKind::MmapFile;
        mmapCfg.path = treeFile;
        oram::ServerStorage mapped(geom, 128, false, 1, mmapCfg);
        mapped.flush();
        mapped.dropPageCache();

        TextTable res({"backend", "tree bytes", "DRAM-resident"});
        res.addRow({"dram", TextTable::bytesCell(geom.serverBytes()),
                    TextTable::bytesCell(dram.residentBytes())});
        res.addRow({"mmap (cold)",
                    TextTable::bytesCell(geom.serverBytes()),
                    TextTable::bytesCell(mapped.residentBytes())});
        res.print(std::cout);
        std::remove(treeFile);
    }
    std::cout << "\nan mmap tree's resident footprint is its touched "
                 "page set, not its\nfile size — ServerStorage::"
                 "residentBytes() reports the measured set.\n";
    return 0;
}
