/**
 * @file
 * Trusted-client hot-embedding cache sweep: Zipf skew x cache size,
 * measuring hit rate and the end-to-end serving win over cache-off.
 *
 * Each cell runs closed-loop client sessions against the serving
 * frontend over Zipf-distributed keys (ranks scattered over the id
 * space, like real embedding tables). Ops on cache-resident rows
 * complete at admission time — DRAM speed — while their scheduled
 * ORAM accesses still execute as dummies, so the server-visible
 * trace is identical in every cell. The cache-off baseline of each
 * skew row anchors the throughput/latency deltas.
 *
 * Modes:
 *   default  CI-sized sweep: skew {0.8, 0.99, 1.2} x cache {0, 1, 4} MiB
 *   --smoke  Zipf(0.99) at {0, 1} MiB; exits non-zero unless the
 *            cached cell's hit rate exceeds 50% (CI regression gate)
 *
 * Emits BENCH_cache_hit.json for cross-PR tracking.
 */

#include <atomic>
#include <chrono>
#include <deque>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "serve/frontend.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "workload/zipf_gen.hh"

using namespace laoram;

namespace {

struct CellResult
{
    double skew = 0.0;
    std::uint64_t cacheMb = 0;
    cache::CacheStats cache;
    LatencyReport latency;
    double wallMs = 0.0;
    double opsPerSec = 0.0;
};

CellResult
runCell(double skew, std::uint64_t cacheMb, std::uint64_t sessions,
        std::uint64_t blocks, std::uint64_t batchesPerSession,
        std::uint64_t opsPerBatch, std::uint64_t window,
        std::uint64_t seed)
{
    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = blocks;
    cfg.engine.base.payloadBytes = 64;
    cfg.engine.base.seed = seed;
    cfg.engine.superblockSize = 4;
    cfg.engine.cache.capacityBytes = cacheMb << 20;
    cfg.engine.cache.policy = cache::CachePolicy::Lru;
    cfg.numShards = 2;
    cfg.pipeline.windowAccesses = window;
    cfg.pipeline.mode = core::PipelineMode::Concurrent;
    core::ShardedLaoram engine(cfg);

    serve::ServeFrontend frontend(engine);
    frontend.start();

    std::atomic<bool> running{true};
    std::thread flusher([&] {
        while (running.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            frontend.flush();
        }
    });

    std::vector<std::thread> clients;
    for (std::uint64_t c = 0; c < sessions; ++c) {
        clients.emplace_back([&, c] {
            serve::Session session = frontend.session();
            Rng rng(seed * 1000 + c);
            const ZipfSampler zipf(blocks, skew);
            const workload::RankScatterer scatter(blocks);
            // Up to 4 batches in flight: enough pipelining to fill
            // windows, bounded so cache-accelerated completions feed
            // back into submission rate (the closed-loop win).
            std::deque<std::future<serve::BatchResult>> inflight;
            for (std::uint64_t b = 0; b < batchesPerSession; ++b) {
                serve::Batch batch;
                for (std::uint64_t i = 0; i < opsPerBatch; ++i) {
                    const core::BlockId id = scatter(zipf(rng));
                    if (rng.nextBool(0.25))
                        batch.ops.push_back(serve::Op::update(
                            id, std::vector<std::uint8_t>(
                                    64,
                                    static_cast<std::uint8_t>(b))));
                    else
                        batch.ops.push_back(serve::Op::lookup(id));
                }
                inflight.push_back(session.submit(std::move(batch)));
                while (inflight.size() > 4) {
                    inflight.front().get();
                    inflight.pop_front();
                }
            }
            while (!inflight.empty()) {
                inflight.front().get();
                inflight.pop_front();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    running.store(false, std::memory_order_relaxed);
    flusher.join();

    const core::ShardedPipelineReport rep = frontend.stop();

    CellResult r;
    r.skew = skew;
    r.cacheMb = cacheMb;
    r.cache = rep.aggregate.cache;
    r.latency = rep.aggregate.latency;
    r.wallMs = rep.aggregate.wallTotalNs / 1e6;
    r.opsPerSec = rep.aggregate.wallTotalNs > 0.0
        ? static_cast<double>(r.latency.requests)
              / (rep.aggregate.wallTotalNs / 1e9)
        : 0.0;
    return r;
}

std::string
skewKey(double skew)
{
    std::ostringstream os;
    os << skew;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_cache_hit",
                   "Hot-embedding cache: Zipf skew x cache size "
                   "sweep");
    auto blocks = args.addUint("blocks", "key-space size", 1 << 14);
    auto sessions = args.addUint("sessions", "client sessions", 4);
    auto batches = args.addUint("batches", "batches per session", 32);
    auto batchOps = args.addUint("batch-ops",
                                 "operations per batch", 32);
    auto window = args.addUint("window",
                               "look-ahead window (operations)", 64);
    auto seed = args.addUint("seed", "traffic seed", 23);
    auto smoke = args.addFlag(
        "smoke", "Zipf(0.99) only; gate hit rate > 50% (CI)");
    args.parse(argc, argv);

    struct Cell
    {
        double skew;
        std::uint64_t cacheMb;
    };
    std::vector<Cell> cells;
    std::uint64_t nBlocks = *blocks;
    std::uint64_t nBatches = *batches;
    if (*smoke) {
        nBlocks = 1 << 12;
        nBatches = 12;
        cells = {{0.99, 0}, {0.99, 1}};
    } else {
        for (double skew : {0.8, 0.99, 1.2})
            for (std::uint64_t mb : {std::uint64_t{0},
                                     std::uint64_t{1},
                                     std::uint64_t{4}})
                cells.push_back({skew, mb});
    }

    bench::printHeader(
        "Hot-embedding cache — Zipf skew x cache size",
        "ops on resident rows complete at admission; scheduled ORAM "
        "accesses still run as dummies (server trace unchanged)");
    std::cout << nBlocks << " keys, " << *sessions << " sessions x "
              << nBatches << " batches x " << *batchOps
              << " ops, window " << *window << "\n\n";

    bench::BenchJson json("cache_hit");
    json.add("blocks", nBlocks);
    json.add("sessions", *sessions);
    json.add("batches_per_session", nBatches);
    json.add("ops_per_batch", *batchOps);
    json.add("window", *window);

    std::cout << "  skew   cache MB      ops   hit %   kops/s   "
                 "speedup   p50 us   p99 us\n";
    // Cache-off ops/sec and p50 per skew row, the speedup anchors.
    double baselineOps = 0.0;
    double baselineP50 = 0.0;
    double gatedHitRate = -1.0;
    double gatedSpeedup = 0.0;
    for (const Cell &cell : cells) {
        const CellResult r =
            runCell(cell.skew, cell.cacheMb, *sessions, nBlocks,
                    nBatches, *batchOps, *window, *seed);
        if (cell.cacheMb == 0) {
            baselineOps = r.opsPerSec;
            baselineP50 = static_cast<double>(r.latency.p50Ns);
        }
        const double speedup =
            baselineOps > 0.0 ? r.opsPerSec / baselineOps : 0.0;
        const double p50Speedup = r.latency.p50Ns > 0
            ? baselineP50 / static_cast<double>(r.latency.p50Ns)
            : 0.0;
        std::cout << std::fixed << std::setprecision(2) << "  "
                  << std::setw(4) << r.skew << std::setw(11)
                  << r.cacheMb << std::setw(9) << r.latency.requests
                  << std::setw(8) << r.cache.hitRate() * 100.0
                  << std::setw(9) << r.opsPerSec / 1e3
                  << std::setw(10) << speedup << std::setw(9)
                  << r.latency.p50Ns / 1e3 << std::setw(9)
                  << r.latency.p99Ns / 1e3 << "\n";

        const std::string prefix = "z" + skewKey(r.skew) + ".mb"
                                   + std::to_string(r.cacheMb);
        json.add(prefix + ".ops", r.latency.requests);
        json.add(prefix + ".hit_rate", r.cache.hitRate());
        json.add(prefix + ".hits", r.cache.hits);
        json.add(prefix + ".misses", r.cache.misses);
        json.add(prefix + ".admission_hits", r.cache.admissionHits);
        json.add(prefix + ".writeback_coalesced",
                 r.cache.writebackCoalesced);
        json.add(prefix + ".evictions", r.cache.evictions);
        json.add(prefix + ".wall_ms", r.wallMs);
        json.add(prefix + ".ops_per_sec", r.opsPerSec);
        json.add(prefix + ".speedup_vs_off", speedup);
        json.add(prefix + ".p50_speedup_vs_off", p50Speedup);
        json.add(prefix + ".p50_ns", r.latency.p50Ns);
        json.add(prefix + ".p99_ns", r.latency.p99Ns);
        if (cell.cacheMb > 0 && r.skew > 0.98 && r.skew < 1.0
            && gatedHitRate < 0.0) {
            gatedHitRate = r.cache.hitRate();
            gatedSpeedup = speedup;
        }
    }

    std::cout
        << "\nhigher skew concentrates traffic on fewer rows, so a "
           "fixed-size cache\nabsorbs more of it; every cell issues "
           "the same scheduled ORAM accesses —\nthe cache changes "
           "client latency, never the server-visible trace.\n";
    json.write();

    if (*smoke) {
        if (gatedHitRate <= 0.5) {
            std::cerr << "SMOKE FAIL: Zipf(0.99) hit rate "
                      << gatedHitRate * 100.0 << "% <= 50%\n";
            return 1;
        }
        std::cout << "\nSMOKE OK: Zipf(0.99) hit rate "
                  << gatedHitRate * 100.0 << "%, speedup "
                  << gatedSpeedup << "x vs cache-off\n";
    }
    return 0;
}
