/**
 * @file
 * Reproduces the memory-neutral comparison of paper §VIII-C: a
 * uniform tree with bucket size 6 versus a fat tree with buckets 9
 * (root) -> 5 (leaf). The paper reports the fat tree using 16.6 %
 * LESS memory while issuing 12.4 % FEWER dummy reads — i.e. fat wins
 * even with a memory handicap, because capacity near the root is
 * where write-back pressure concentrates.
 */

#include <iostream>

#include "common/harness.hh"
#include "core/laoram_client.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;

namespace {

struct Config
{
    const char *label;
    oram::BucketProfile profile;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_memneutral_ablation",
                   "Section VIII-C memory-neutral fat-tree study");
    auto entries = args.addUint("entries", "embedding entries",
                                1 << 14);
    auto epochs = args.addUint("epochs", "permutation epochs", 6);
    auto superblock = args.addUint("superblock", "superblock size", 8);
    auto seed = args.addUint("seed", "experiment seed", 31);
    args.parse(argc, argv);

    bench::printHeader(
        "Section VIII-C — memory-neutral fat vs uniform tree",
        "uniform Z=6 vs fat 9->5; paper: fat uses 16.6% less memory "
        "yet triggers 12.4% fewer dummy reads");

    const workload::Trace trace = bench::makeEpochedTrace(
        workload::DatasetKind::Permutation, *entries, *entries,
        *epochs, *seed);

    const Config configs[] = {
        {"uniform Z=6", oram::BucketProfile::uniform(6)},
        {"fat 9->5", oram::BucketProfile::linear(5, 9)},
    };

    TextTable table({"tree", "server memory", "dummy reads",
                     "dummy/access", "sim ms"});
    std::uint64_t mem[2], dummies[2];
    int i = 0;
    for (const Config &c : configs) {
        core::LaoramConfig cfg;
        cfg.base.numBlocks = *entries;
        cfg.base.blockBytes = 128;
        cfg.base.profile = c.profile;
        cfg.base.seed = *seed;
        cfg.superblockSize = *superblock;
        core::Laoram engine(cfg);
        engine.runTrace(trace.accesses);

        mem[i] = engine.geometry().serverBytes();
        dummies[i] = engine.meter().counters().dummyReads;
        table.addRow({
            c.label,
            TextTable::bytesCell(mem[i]),
            TextTable::cell(dummies[i]),
            TextTable::cell(
                engine.meter().counters().dummyReadsPerAccess(), 3),
            TextTable::cell(engine.meter().clock().milliseconds(), 2),
        });
        ++i;
    }
    table.print(std::cout);

    const double mem_saving =
        1.0 - static_cast<double>(mem[1]) / static_cast<double>(mem[0]);
    const double dummy_saving = dummies[0] == 0
        ? 0.0
        : 1.0
            - static_cast<double>(dummies[1])
                / static_cast<double>(dummies[0]);
    std::cout << "\nfat tree memory saving:      "
              << TextTable::cell(mem_saving * 100.0, 1)
              << "% (paper: 16.6%)\n"
              << "fat tree dummy-read saving:  "
              << TextTable::cell(dummy_saving * 100.0, 1)
              << "% (paper: 12.4%)\n"
              << "\npaper shape check: the fat tree must win on BOTH "
                 "axes simultaneously.\n";
    return 0;
}
