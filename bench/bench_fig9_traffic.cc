/**
 * @file
 * Reproduces paper Fig. 9: memory-traffic reduction of LAORAM vs
 * PathORAM on the DLRM/Kaggle trace, with the analytic upper bounds
 * the paper derives: S for a normal tree and 2(Z+1)/(3Z+1) * S for
 * the fat tree.
 *
 * Paper reference points: Normal/S2 2.0x (meets the bound), Normal/S4
 * 3.30x (below the 4x bound once evictions kick in), Fat/S8 above
 * Normal/S8.
 */

#include <iostream>

#include "common/harness.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig9_traffic",
                   "Reproduces Fig. 9 (traffic reduction, Kaggle)");
    auto full = args.addFlag("full", "paper-scale entry counts");
    auto epochs = args.addUint("epochs", "training epochs per run", 6);
    auto seed = args.addUint("seed", "experiment seed", 21);
    auto dataset = args.addString(
        "dataset", "kaggle (paper) or permutation (paper's follow-up "
        "analysis)", "kaggle");
    args.parse(argc, argv);

    const auto kind = workload::datasetFromName(*dataset);
    bench::printHeader(
        "Fig. 9 — LAORAM memory traffic reduction: "
            + std::string(workload::datasetName(kind)),
        "total bytes moved vs PathORAM; analytic bounds per paper "
        "Section VIII-F");

    const bench::DatasetScale scale = bench::scaleFor(kind, *full);
    const workload::Trace trace = bench::makeEpochedTrace(
        kind, scale.numBlocks, scale.accesses, *epochs, *seed);

    bench::HarnessConfig hcfg;
    hcfg.blockBytes = scale.blockBytes;
    hcfg.seed = *seed;
    const double z = static_cast<double>(hcfg.bucketZ);

    double baseline_bytes = 0.0;
    TextTable table({"config", "GB moved", "reduction",
                     "analytic bound", "paper (Kaggle)"});
    const char *paper_vals[] = {"1.00", "2.00", "3.30", "~4.5",
                                "<2",   "~3",   ">5"};
    int idx = 0;
    for (const bench::EngineSpec &spec : bench::paperConfigs()) {
        const bench::RunResult r = bench::runSpec(spec, trace, hcfg);
        const double bytes =
            static_cast<double>(r.counters.totalBytes());
        if (spec.kind == bench::EngineSpec::Kind::PathOramBaseline)
            baseline_bytes = bytes;

        double bound = 1.0;
        const double s = static_cast<double>(spec.superblock);
        if (spec.kind == bench::EngineSpec::Kind::Normal)
            bound = s;
        else if (spec.kind == bench::EngineSpec::Kind::Fat)
            bound = 2.0 * (z + 1.0) / (3.0 * z + 1.0) * s;

        table.addRow({
            r.label,
            TextTable::cell(bytes / 1e9, 3),
            TextTable::cell(baseline_bytes / bytes, 2) + "x",
            TextTable::cell(bound, 2) + "x",
            paper_vals[idx],
        });
        ++idx;
    }
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.printCsv(std::cout);

    std::cout << "\npaper shape check: Normal/S2 sits at its 2x bound;"
                 " larger S falls below\nits bound as evictions grow; "
                 "fat trails normal at small S (wider paths)\nbut "
                 "overtakes it at S8 where eviction savings dominate."
                 "\n";
    return 0;
}
