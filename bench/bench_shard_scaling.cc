/**
 * @file
 * Shard-scaling bench: aggregate serve throughput vs. shard count.
 *
 * One logical Zipf trace is hash-split across N independent LAORAM
 * trees served concurrently by the shard pool (one two-stage pipeline
 * per shard). Two throughput views are reported:
 *
 *  - simulated: trace accesses / max-over-shards simulated serve
 *    time — the deployment view, where every shard is its own ORAM
 *    server device. Sharding wins twice: shards serve in parallel
 *    (divide the stream) AND each shard's tree is shallower (fewer
 *    blocks -> shorter paths -> less traffic per access), so the
 *    aggregate grows monotonically with the shard count.
 *  - wall clock: host-dependent (thread count vs. cores); printed for
 *    reference.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "core/sharded_laoram.hh"
#include "util/cli.hh"
#include "workload/zipf_gen.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("bench_shard_scaling",
                   "Aggregate serve throughput vs. LAORAM shard count");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 16);
    auto accesses = args.addUint("accesses", "trace length", 1 << 16);
    auto window = args.addUint("window", "pipeline window accesses",
                               2048);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto skew = args.addDouble("skew", "Zipf exponent", 1.0);
    auto seed = args.addUint("seed", "trace + engine seed", 1);
    auto prepThreads = args.addUint(
        "prep-threads", "preprocessor threads per shard pipeline", 1);
    auto prepBudget = args.addUint(
        "prep-budget",
        "total preprocessor-thread budget split over the serving "
        "pool (0 = use --prep-threads per shard)",
        0);
    args.parse(argc, argv);

    bench::printHeader(
        "Shard scaling (hash-sharded multi-tree LAORAM)",
        "one Zipf trace split over N trees, one pipeline per shard, "
        "pool-served");

    workload::ZipfParams zp;
    zp.numBlocks = *blocks;
    zp.accesses = *accesses;
    zp.skew = *skew;
    zp.seed = *seed + 100;
    const workload::Trace trace = workload::makeZipfTrace(zp);
    std::cout << *accesses << " Zipf(" << *skew << ") accesses over "
              << *blocks << " rows, window " << *window
              << ", S=" << *superblock << "\n\n";

    std::cout << "  shards   sim ms   acc/simMs   speedup   wall ms   "
                 "acc/wallMs   prep hidden\n";

    bench::BenchJson json("shard_scaling");
    json.add("accesses", *accesses);
    json.add("blocks", *blocks);

    double baselineSimNs = 0.0;
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        core::ShardedLaoramConfig cfg;
        cfg.engine.base.numBlocks = *blocks;
        cfg.engine.base.blockBytes = 128;
        cfg.engine.base.seed = *seed;
        cfg.engine.superblockSize = *superblock;
        cfg.numShards = shards;
        cfg.pipeline.windowAccesses = *window;
        cfg.pipeline.prepThreads =
            std::max<std::uint64_t>(*prepThreads, 1);
        cfg.prepThreadBudget =
            static_cast<std::uint32_t>(*prepBudget);

        core::ShardedLaoram engine(cfg);
        const auto rep = engine.runTrace(trace.accesses);

        if (shards == 1)
            baselineSimNs = rep.simNs;
        const double accs = static_cast<double>(*accesses);
        std::cout << std::fixed << std::setprecision(3) << "  "
                  << std::setw(6) << shards << std::setw(9)
                  << rep.simNs / 1e6 << std::setw(12)
                  << accs / (rep.simNs / 1e6) << std::setw(10)
                  << baselineSimNs / rep.simNs << std::setw(10)
                  << rep.aggregate.wallTotalNs / 1e6 << std::setw(13)
                  << accs / (rep.aggregate.wallTotalNs / 1e6)
                  << std::setw(13)
                  << rep.aggregate.measuredPrepHiddenFraction * 100.0
                  << "%\n";

        const std::string tag = "shards" + std::to_string(shards);
        json.add(tag + ".sim_ms", rep.simNs / 1e6);
        json.add(tag + ".wall_ms", rep.aggregate.wallTotalNs / 1e6);
        json.add(tag + ".speedup", baselineSimNs / rep.simNs);
        json.add(tag + ".io_stall_ms", rep.aggregate.wallIoNs / 1e6);
        json.add(tag + ".io_serve_fraction",
                 rep.aggregate.ioServeFraction);
        json.add(tag + ".prep_threads_total",
                 static_cast<std::uint64_t>(rep.aggregate.prepThreads));
        json.add(tag + ".reorder_stall_ms",
                 rep.aggregate.wallReorderStallNs / 1e6);
    }
    json.write();

    std::cout << "\nAggregate simulated throughput rises "
                 "monotonically with the shard\ncount: concurrent "
                 "shards split the stream N ways and each shard's\n"
                 "smaller tree makes every path cheaper. Wall-clock "
                 "scaling tracks the\nhost's spare cores.\n";
    return 0;
}
