/**
 * @file
 * Observability overhead gate: the same concurrent pipeline run three
 * ways — obs fully disabled, metrics enabled, span tracing enabled —
 * so the cost of the instrumentation is a measured number, not a
 * promise.
 *
 * The disabled path is the contract that matters: every metric site
 * is one predicted-not-taken branch on a relaxed atomic load, every
 * span site one branch with no clock read, so a run without
 * --metrics-out/--trace-out should sit inside run-to-run noise
 * (reported as disabled.noise_fraction from two back-to-back disabled
 * runs). The enabled phases also *reconcile*: the live counters must
 * agree exactly with the pipeline report and the engine's own traffic
 * ledger, and the trace dump must validate as Chrome-trace JSON with
 * spans from both pipeline stages — these are the hard CI gates
 * (--smoke), because correctness regressions hide behind noisy
 * percentages but reconciliation failures do not.
 */

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/harness.hh"
#include "core/pipeline.hh"
#include "core/serve_source.hh"
#include "mem/traffic_meter.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace laoram;

namespace {

struct RunOutcome
{
    core::PipelineReport rep;
    mem::TrafficCounters traffic;
};

RunOutcome
runOnce(std::uint64_t blocks, std::uint64_t window,
        const std::vector<oram::BlockId> &trace)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.seed = 5;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = window;
    core::Laoram engine(cfg);

    core::BatchPipeline pipe(engine,
                             core::PipelineConfig{}
                                 .withWindowAccesses(window)
                                 .withPrepThreads(2)
                                 .withMode(
                                     core::PipelineMode::Concurrent));
    core::TraceSource source(trace, window);
    RunOutcome out;
    out.rep = pipe.run(source);
    out.traffic = engine.meter().counters();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_obs_overhead",
                   "Cost of the observability hooks: disabled vs "
                   "metrics vs tracing");
    auto blocks = args.addUint("blocks", "embedding rows", 1 << 13);
    auto accesses = args.addUint("accesses", "trace length", 1 << 15);
    auto window = args.addUint("window", "pipeline window accesses",
                               512);
    auto smoke = args.addFlag("smoke",
                              "tiny geometry for the CI gate "
                              "(reconciliation + trace validation)");
    args.parse(argc, argv);

    std::uint64_t nBlocks = *blocks, nAccesses = *accesses,
                  nWindow = *window;
    if (*smoke) {
        nBlocks = 1 << 10;
        nAccesses = 1 << 13;
        nWindow = 256;
    }

    bench::printHeader(
        "Observability overhead (metrics gate + span tracer)",
        "one concurrent pipeline, three instrumentation states");

    const auto trace =
        bench::randomTrace(nBlocks, nAccesses, 1234);
    std::cout << nAccesses << " accesses over " << nBlocks
              << " blocks, window " << nWindow << ", 2 prep threads\n\n";

    obs::setMetricsEnabled(false);
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();

    // Warmup (first-touch page faults, thread pools) then two
    // disabled runs: their spread is the noise floor the overhead
    // numbers below should be read against.
    runOnce(nBlocks, nWindow, trace);
    const double disabled1 =
        runOnce(nBlocks, nWindow, trace).rep.wallTotalNs;
    const double disabled2 =
        runOnce(nBlocks, nWindow, trace).rep.wallTotalNs;
    const double disabledNs = std::min(disabled1, disabled2);
    const double noise =
        std::abs(disabled1 - disabled2) / std::max(disabled1, disabled2);

    // ---- Metrics enabled: time it, and reconcile the live counters
    // with the run's own report — the sampled series must be the same
    // totals the engine accounts, exactly.
    auto &reg = obs::MetricsRegistry::instance();
    obs::Counter &windowsServed =
        reg.counter("pipeline.windows_served");
    obs::Counter &logicalAccesses =
        reg.counter("oram.logical_accesses");
    const std::uint64_t windowsBefore = windowsServed.get();
    const std::uint64_t accessesBefore = logicalAccesses.get();

    obs::setMetricsEnabled(true);
    const RunOutcome metricsRun = runOnce(nBlocks, nWindow, trace);
    obs::setMetricsEnabled(false);
    const double metricsNs = metricsRun.rep.wallTotalNs;

    const std::uint64_t windowsDelta =
        windowsServed.get() - windowsBefore;
    const std::uint64_t accessesDelta =
        logicalAccesses.get() - accessesBefore;
    if (windowsDelta != metricsRun.rep.windows)
        LAORAM_FATAL("metrics reconciliation failed: counter saw ",
                     windowsDelta, " windows, report says ",
                     metricsRun.rep.windows);
    if (accessesDelta != metricsRun.traffic.logicalAccesses)
        LAORAM_FATAL("metrics reconciliation failed: counter saw ",
                     accessesDelta, " accesses, traffic ledger says ",
                     metricsRun.traffic.logicalAccesses);

    // ---- Tracing enabled: time it, then the dump must parse as
    // Chrome-trace JSON with spans from both pipeline stages (prep
    // workers + serving thread).
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(1 << 15);
    const double traceNs =
        runOnce(nBlocks, nWindow, trace).rep.wallTotalNs;
    tracer.disable();

    std::ostringstream traceJson;
    tracer.writeTo(traceJson);
    std::string error;
    std::uint64_t events = 0;
    std::size_t threads = 0;
    if (!obs::validateChromeTrace(traceJson.str(), &error, &events,
                                  &threads))
        LAORAM_FATAL("trace validation failed: ", error);
    if (events == 0 || threads < 2)
        LAORAM_FATAL("trace validation failed: ", events,
                     " events from ", threads,
                     " threads (want spans from both stages)");

    const double metricsOverhead = metricsNs / disabledNs - 1.0;
    const double traceOverhead = traceNs / disabledNs - 1.0;
    std::cout << std::fixed << std::setprecision(2)
              << "disabled : " << disabledNs / 1e6
              << " ms wall (run-to-run noise " << noise * 100.0
              << "%)\n"
              << "metrics  : " << metricsNs / 1e6 << " ms wall ("
              << metricsOverhead * 100.0 << "% vs disabled)\n"
              << "tracing  : " << traceNs / 1e6 << " ms wall ("
              << traceOverhead * 100.0 << "% vs disabled, "
              << tracer.recorded() << " spans kept, "
              << tracer.dropped() << " dropped, " << threads
              << " threads)\n\n"
              << "live counters reconciled with the report ("
              << windowsDelta << " windows, " << accessesDelta
              << " accesses) and the trace validates as Chrome JSON —"
              << "\nthe disabled path is one branch per site, so its "
                 "cost stays inside the\nnoise floor above.\n";

    bench::BenchJson json("obs_overhead");
    json.add("accesses", nAccesses);
    json.add("disabled.wall_ms", disabledNs / 1e6);
    json.add("disabled.noise_fraction", noise);
    json.add("metrics.wall_ms", metricsNs / 1e6);
    json.add("metrics.overhead_fraction", metricsOverhead);
    json.add("trace.wall_ms", traceNs / 1e6);
    json.add("trace.overhead_fraction", traceOverhead);
    json.add("trace.events", events);
    json.add("trace.threads", static_cast<std::uint64_t>(threads));
    json.add("trace.dropped", tracer.dropped());
    json.write();
    return 0;
}
