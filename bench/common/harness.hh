/**
 * @file
 * Shared experiment harness for the paper-reproduction benches.
 *
 * Provides the seven Fig.-7 engine configurations (PathORAM,
 * Normal/S2-S8, Fat/S2-S8), dataset scaling (CI-friendly defaults vs
 * --full paper geometry), epoch-structured trace builders, and a
 * one-call "run trace through engine, collect metrics" helper.
 */

#ifndef LAORAM_BENCH_COMMON_HARNESS_HH
#define LAORAM_BENCH_COMMON_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/laoram_client.hh"
#include "mem/traffic_meter.hh"
#include "oram/engine.hh"
#include "workload/generator.hh"

namespace laoram::bench {

/** One engine configuration of the paper's sweeps. */
struct EngineSpec
{
    enum class Kind
    {
        PathOramBaseline, ///< superblock size 1, uniform tree
        Normal,           ///< LAORAM, uniform tree
        Fat,              ///< LAORAM, fat tree (root 2Z -> leaf Z)
    };

    Kind kind = Kind::PathOramBaseline;
    std::uint64_t superblock = 1;

    /** Paper label: "PathORAM", "Normal/S4", "Fat/S8", ... */
    std::string label() const;
};

/** The seven bars of every Fig. 7 panel, in paper order. */
std::vector<EngineSpec> paperConfigs();

/** Metrics extracted from one (engine, trace) run. */
struct RunResult
{
    std::string label;
    mem::TrafficCounters counters;
    double simMs = 0.0;          ///< simulated end-to-end time
    std::uint64_t serverBytes = 0; ///< tree memory requirement
};

/** Engine-construction knobs shared by the benches. */
struct HarnessConfig
{
    std::uint64_t blockBytes = 128;
    std::uint64_t bucketZ = 4;        ///< paper default bucket size
    std::uint64_t stashHighWater = 500;
    std::uint64_t stashLowWater = 50;
    std::uint64_t seed = 1;
};

/** Build the engine described by @p spec over @p numBlocks blocks. */
std::unique_ptr<oram::OramEngine> makeEngine(const EngineSpec &spec,
                                             std::uint64_t numBlocks,
                                             const HarnessConfig &cfg);

/** Run @p trace through @p spec's engine and collect metrics. */
RunResult runSpec(const EngineSpec &spec, const workload::Trace &trace,
                  const HarnessConfig &cfg);

/** Scaled-down (default) vs paper-scale dataset geometry. */
struct DatasetScale
{
    std::uint64_t numBlocks = 0;
    std::uint64_t accesses = 0;
    std::uint64_t blockBytes = 128;
};

/**
 * CI-friendly defaults that preserve the paper's shape (multiple
 * training epochs per run); --full switches to Table-I geometry.
 */
DatasetScale scaleFor(workload::DatasetKind kind, bool full);

/**
 * Build a training trace of @p epochs epochs of @p perEpoch accesses
 * each. Epochs use distinct seeds (reshuffled training set), matching
 * how DLRM/XLM-R revisit their data; the permutation dataset is
 * already epoch-structured internally and is generated in one piece.
 */
workload::Trace makeEpochedTrace(workload::DatasetKind kind,
                                 std::uint64_t numBlocks,
                                 std::uint64_t perEpoch,
                                 std::uint64_t epochs,
                                 std::uint64_t seed);

/** Print a standard bench header line. */
void printHeader(const std::string &title, const std::string &detail);

/**
 * Machine-readable bench output: collect flat key/value metrics and
 * write them as `BENCH_<name>.json` so the perf trajectory (ops/s,
 * stall breakdown, resident bytes) is trackable across PRs.
 *
 * Output directory: $LAORAM_BENCH_JSON_DIR when set, else the current
 * working directory. Keys keep insertion order; values are numbers or
 * strings. write() returns the path written (empty on I/O failure —
 * benches warn but never fail on metrics output).
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string benchName);

    void add(const std::string &key, double value);
    void add(const std::string &key, std::uint64_t value);
    void add(const std::string &key, const std::string &value);

    std::string write() const;

  private:
    struct Entry
    {
        std::string key;
        std::string rendered; ///< pre-rendered JSON value
    };

    std::string name;
    std::vector<Entry> entries;
};

/** Uniform random trace of @p accesses ids over [0, numBlocks). */
std::vector<oram::BlockId> randomTrace(std::uint64_t numBlocks,
                                       std::uint64_t accesses,
                                       std::uint64_t seed);

} // namespace laoram::bench

#endif // LAORAM_BENCH_COMMON_HARNESS_HH
