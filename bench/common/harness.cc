#include "common/harness.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "oram/path_oram.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::bench {

std::string
EngineSpec::label() const
{
    switch (kind) {
      case Kind::PathOramBaseline:
        return "PathORAM";
      case Kind::Normal:
        return "Normal/S" + std::to_string(superblock);
      case Kind::Fat:
        return "Fat/S" + std::to_string(superblock);
    }
    return "?";
}

std::vector<EngineSpec>
paperConfigs()
{
    return {
        {EngineSpec::Kind::PathOramBaseline, 1},
        {EngineSpec::Kind::Normal, 2},
        {EngineSpec::Kind::Normal, 4},
        {EngineSpec::Kind::Normal, 8},
        {EngineSpec::Kind::Fat, 2},
        {EngineSpec::Kind::Fat, 4},
        {EngineSpec::Kind::Fat, 8},
    };
}

std::unique_ptr<oram::OramEngine>
makeEngine(const EngineSpec &spec, std::uint64_t numBlocks,
           const HarnessConfig &cfg)
{
    oram::EngineConfig base;
    base.numBlocks = numBlocks;
    base.blockBytes = cfg.blockBytes;
    base.payloadBytes = 0; // pattern-level simulation
    base.stashHighWater = cfg.stashHighWater;
    base.stashLowWater = cfg.stashLowWater;
    base.encrypt = false;
    base.seed = cfg.seed;

    switch (spec.kind) {
      case EngineSpec::Kind::PathOramBaseline: {
        base.profile = oram::BucketProfile::uniform(cfg.bucketZ);
        return std::make_unique<oram::PathOram>(base);
      }
      case EngineSpec::Kind::Normal: {
        base.profile = oram::BucketProfile::uniform(cfg.bucketZ);
        core::LaoramConfig lcfg;
        lcfg.base = base;
        lcfg.superblockSize = spec.superblock;
        return std::make_unique<core::Laoram>(lcfg);
      }
      case EngineSpec::Kind::Fat: {
        base.profile = oram::BucketProfile::fat(cfg.bucketZ);
        core::LaoramConfig lcfg;
        lcfg.base = base;
        lcfg.superblockSize = spec.superblock;
        return std::make_unique<core::Laoram>(lcfg);
      }
    }
    LAORAM_PANIC("unreachable engine kind");
}

RunResult
runSpec(const EngineSpec &spec, const workload::Trace &trace,
        const HarnessConfig &cfg)
{
    auto engine = makeEngine(spec, trace.numBlocks, cfg);
    engine->runTrace(trace.accesses);

    RunResult res;
    res.label = spec.label();
    res.counters = engine->meter().counters();
    res.simMs = engine->meter().clock().milliseconds();
    res.serverBytes = engine->geometry().serverBytes();
    return res;
}

DatasetScale
scaleFor(workload::DatasetKind kind, bool full)
{
    using workload::DatasetKind;
    DatasetScale s;
    s.blockBytes = workload::paperBlockBytes(kind);
    if (full) {
        s.numBlocks = workload::paperNumBlocks(kind);
        // One paper-scale "epoch" per entry count; the benches then
        // multiply by their epoch counts.
        s.accesses = s.numBlocks;
        return s;
    }
    switch (kind) {
      case DatasetKind::Permutation:
      case DatasetKind::Gaussian:
        s.numBlocks = 1 << 14; // 16K entries
        s.accesses = 1 << 14;  // one epoch
        break;
      case DatasetKind::Kaggle:
        s.numBlocks = 1 << 16; // 64K entries (paper: 10.1M)
        s.accesses = 1 << 16;
        break;
      case DatasetKind::Xnli:
        // The XLM-R vocabulary is small enough to simulate at true
        // paper scale even in the default configuration.
        s.numBlocks = 262144;
        s.accesses = 262144;
        break;
    }
    return s;
}

workload::Trace
makeEpochedTrace(workload::DatasetKind kind, std::uint64_t numBlocks,
                 std::uint64_t perEpoch, std::uint64_t epochs,
                 std::uint64_t seed)
{
    using workload::DatasetKind;
    if (kind == DatasetKind::Permutation) {
        // The permutation generator is epoch-structured internally.
        return workload::makeTrace(kind, numBlocks, perEpoch * epochs,
                                   seed);
    }
    workload::Trace out;
    out.numBlocks = numBlocks;
    out.accesses.reserve(perEpoch * epochs);
    for (std::uint64_t e = 0; e < epochs; ++e) {
        const workload::Trace epoch =
            workload::makeTrace(kind, numBlocks, perEpoch,
                                seed + e * 7919);
        out.name = epoch.name;
        out.accesses.insert(out.accesses.end(), epoch.accesses.begin(),
                            epoch.accesses.end());
    }
    return out;
}

void
printHeader(const std::string &title, const std::string &detail)
{
    std::cout << "==============================================="
                 "=================\n"
              << title << "\n"
              << detail << "\n"
              << "==============================================="
                 "=================\n";
}

BenchJson::BenchJson(std::string benchName) : name(std::move(benchName))
{
}

void
BenchJson::add(const std::string &key, double value)
{
    entries.push_back({key, util::jsonNumber(value)});
}

void
BenchJson::add(const std::string &key, std::uint64_t value)
{
    entries.push_back({key, std::to_string(value)});
}

void
BenchJson::add(const std::string &key, const std::string &value)
{
    entries.push_back({key, "\"" + util::jsonEscape(value) + "\""});
}

std::string
BenchJson::write() const
{
    std::string dir;
    if (const char *env = std::getenv("LAORAM_BENCH_JSON_DIR"))
        dir = env;
    std::string path = dir.empty() ? "BENCH_" + name + ".json"
                                   : dir + "/BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write bench metrics to ", path);
        return {};
    }
    out << "{\n  \"bench\": \"" << util::jsonEscape(name) << "\"";
    for (const Entry &e : entries)
        out << ",\n  \"" << util::jsonEscape(e.key)
            << "\": " << e.rendered;
    out << "\n}\n";
    std::cout << "\n[bench-json] wrote " << path << "\n";
    return path;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t numBlocks, std::uint64_t accesses,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t(accesses);
    for (auto &id : t)
        id = rng.nextBounded(numBlocks);
    return t;
}

} // namespace laoram::bench
